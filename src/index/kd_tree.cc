#include "index/kd_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace psens {
namespace {

/// Relative slack applied to squared-distance pruning bounds: pruning a
/// subtree is only allowed when it is out of range by more than a few ulps,
/// so rounding in the bound arithmetic can never drop a boundary point the
/// exact leaf filter would keep.
inline bool DefinitelyFarther(double min_d2, double r2) {
  return min_d2 > r2 * (1.0 + 1e-12) + 1e-300;
}

}  // namespace

KdTreeIndex::KdTreeIndex(const std::vector<Point>& points) {
  order_.resize(points.size());
  std::iota(order_.begin(), order_.end(), 0);
  if (!order_.empty()) {
    nodes_.reserve(2 * order_.size() / kLeafSize + 2);
    Build(points, 0, static_cast<int>(order_.size()));
  }
  // Duplicate coordinates into order_ layout so leaf scans are contiguous.
  xs_.resize(points.size());
  ys_.resize(points.size());
  for (size_t k = 0; k < order_.size(); ++k) {
    xs_[k] = points[static_cast<size_t>(order_[k])].x;
    ys_[k] = points[static_cast<size_t>(order_[k])].y;
  }
}

int KdTreeIndex::Build(const std::vector<Point>& points, int begin, int end) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  Node node;
  node.begin = begin;
  node.end = end;
  node.bbox.x_min = node.bbox.x_max = points[order_[begin]].x;
  node.bbox.y_min = node.bbox.y_max = points[order_[begin]].y;
  for (int k = begin; k < end; ++k) {
    const Point& p = points[order_[k]];
    node.bbox.x_min = std::min(node.bbox.x_min, p.x);
    node.bbox.x_max = std::max(node.bbox.x_max, p.x);
    node.bbox.y_min = std::min(node.bbox.y_min, p.y);
    node.bbox.y_max = std::max(node.bbox.y_max, p.y);
  }
  const bool degenerate = node.bbox.Width() == 0.0 && node.bbox.Height() == 0.0;
  if (end - begin <= kLeafSize || degenerate) {
    // Leaf: ascending order lets range scans emit sorted runs.
    std::sort(order_.begin() + begin, order_.begin() + end);
    nodes_[node_id] = node;
    return node_id;
  }
  const bool split_x = node.bbox.Width() >= node.bbox.Height();
  const int mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](int a, int b) {
                     const double ka = split_x ? points[a].x : points[a].y;
                     const double kb = split_x ? points[b].x : points[b].y;
                     if (ka != kb) return ka < kb;
                     return a < b;  // deterministic total order on duplicates
                   });
  node.left = Build(points, begin, mid);
  node.right = Build(points, mid, end);
  nodes_[node_id] = node;
  return node_id;
}

double KdTreeIndex::BoxMinDist2(const Rect& b, const Point& p) {
  const double dx = std::max({b.x_min - p.x, p.x - b.x_max, 0.0});
  const double dy = std::max({b.y_min - p.y, p.y - b.y_max, 0.0});
  return dx * dx + dy * dy;
}

void KdTreeIndex::RangeRecurse(int node_id, const Point& center, double radius,
                               double r2, std::vector<int>* out) const {
  const Node& node = nodes_[node_id];
  if (DefinitelyFarther(BoxMinDist2(node.bbox, center), r2)) return;
  if (node.left < 0) {
    // Two-phase filter (see uniform_grid.cc): squared distance away from
    // the boundary, the exact brute-force predicate within it.
    const double r2_lo = r2 * (1.0 - 1e-12);
    const double r2_hi = r2 * (1.0 + 1e-12);
    for (int k = node.begin; k < node.end; ++k) {
      const double dx = xs_[k] - center.x;
      const double dy = ys_[k] - center.y;
      const double d2 = dx * dx + dy * dy;
      if (d2 > r2_hi) continue;
      if (d2 <= r2_lo || Distance(Point{xs_[k], ys_[k]}, center) <= radius) {
        out->push_back(order_[k]);
      }
    }
    return;
  }
  RangeRecurse(node.left, center, radius, r2, out);
  RangeRecurse(node.right, center, radius, r2, out);
}

void KdTreeIndex::RangeQuery(const Point& center, double radius,
                             std::vector<int>* out) const {
  out->clear();
  if (nodes_.empty() || radius < 0.0) return;
  RangeRecurse(0, center, radius, radius * radius, out);
  std::sort(out->begin(), out->end());
}

void KdTreeIndex::RectRecurse(int node_id, const Rect& rect,
                              std::vector<int>* out) const {
  const Node& node = nodes_[node_id];
  // Inclusive overlap test (Rect::Overlaps requires positive intersection
  // area, which would wrongly prune degenerate query rects and shared
  // edges that Contains accepts).
  if (node.bbox.x_min > rect.x_max || node.bbox.x_max < rect.x_min ||
      node.bbox.y_min > rect.y_max || node.bbox.y_max < rect.y_min) {
    return;
  }
  if (node.left < 0) {
    for (int k = node.begin; k < node.end; ++k) {
      if (rect.Contains(Point{xs_[k], ys_[k]})) out->push_back(order_[k]);
    }
    return;
  }
  RectRecurse(node.left, rect, out);
  RectRecurse(node.right, rect, out);
}

void KdTreeIndex::RectQuery(const Rect& rect, std::vector<int>* out) const {
  out->clear();
  if (nodes_.empty()) return;
  RectRecurse(0, rect, out);
  std::sort(out->begin(), out->end());
}

void KdTreeIndex::NearestRecurse(int node_id, const Point& p, int* best,
                                 double* best_d2) const {
  const Node& node = nodes_[node_id];
  // Prune only on strictly greater: an equal-distance subtree may hold a
  // lower index that wins the tie.
  if (BoxMinDist2(node.bbox, p) > *best_d2) return;
  if (node.left < 0) {
    for (int k = node.begin; k < node.end; ++k) {
      const int i = order_[k];
      const double dx = xs_[k] - p.x;
      const double dy = ys_[k] - p.y;
      const double d2 = dx * dx + dy * dy;
      if (d2 < *best_d2 || (d2 == *best_d2 && i < *best)) {
        *best_d2 = d2;
        *best = i;
      }
    }
    return;
  }
  // Visit the closer child first so the bound tightens early.
  const double left_d2 = BoxMinDist2(nodes_[node.left].bbox, p);
  const double right_d2 = BoxMinDist2(nodes_[node.right].bbox, p);
  if (left_d2 <= right_d2) {
    NearestRecurse(node.left, p, best, best_d2);
    NearestRecurse(node.right, p, best, best_d2);
  } else {
    NearestRecurse(node.right, p, best, best_d2);
    NearestRecurse(node.left, p, best, best_d2);
  }
}

int KdTreeIndex::Nearest(const Point& p) const {
  if (nodes_.empty()) return -1;
  int best = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  NearestRecurse(0, p, &best, &best_d2);
  return best;
}

}  // namespace psens
