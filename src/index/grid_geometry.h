#ifndef PSENS_INDEX_GRID_GEOMETRY_H_
#define PSENS_INDEX_GRID_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/geometry.h"

namespace psens {

/// Cell layout and binning arithmetic shared by the static
/// (`UniformGridIndex`) and dynamic (`DynamicGridIndex`) bucket grids.
/// Both grids must use the *exact same* floor/clamp binning and
/// conservative pruning bounds — the bit-identical-results contract
/// (docs/ARCHITECTURE.md) compares their probe results against the same
/// brute-force predicates, and a filter tweak applied to one grid but
/// not the other would silently break the fig11/fig12 equivalence
/// gates. Keeping the arithmetic here makes divergence impossible.
struct GridGeometry {
  Rect bounds{0, 0, 0, 0};
  double cell = 1.0;
  int nx = 1;
  int ny = 1;

  /// Auto cell sizing: ~2 points per cell over the bounding box.
  /// Degenerate boxes (all points collinear or identical) fall back to
  /// the larger extent, and finally to 1.0 so the grid always has a
  /// valid geometry.
  static double AutoCellSize(const Rect& bounds, size_t n) {
    const double area = bounds.Area();
    if (area > 0.0 && n > 0) {
      return std::max(1e-9, std::sqrt(2.0 * area / static_cast<double>(n)));
    }
    const double extent = std::max(bounds.Width(), bounds.Height());
    if (extent > 0.0 && n > 0) {
      return std::max(1e-9,
                      extent / std::max(1.0, std::sqrt(static_cast<double>(n))));
    }
    return 1.0;
  }

  /// Lays out cells over `bounds` for an expected population of `n`
  /// points (`cell_size <= 0` picks the auto size). The cell table is
  /// bounded at ~4 cells per point: a tiny cell on a huge box must not
  /// allocate an unbounded histogram.
  static GridGeometry Layout(const Rect& bounds, size_t n, double cell_size) {
    GridGeometry g;
    g.bounds = bounds;
    g.cell = cell_size > 0.0 ? cell_size : AutoCellSize(bounds, n);
    g.nx = std::max(1, static_cast<int>(std::ceil(bounds.Width() / g.cell)));
    g.ny = std::max(1, static_cast<int>(std::ceil(bounds.Height() / g.cell)));
    const long long max_cells =
        4LL * static_cast<long long>(std::max<size_t>(n, 4)) + 16;
    while (static_cast<long long>(g.nx) * g.ny > max_cells) {
      g.cell *= 2.0;
      g.nx = std::max(1, static_cast<int>(std::ceil(bounds.Width() / g.cell)));
      g.ny = std::max(1, static_cast<int>(std::ceil(bounds.Height() / g.cell)));
    }
    return g;
  }

  /// Bounding box of a point vector (empty vector: zero box at origin).
  static Rect BoundsOf(const std::vector<Point>& points) {
    Rect b{0, 0, 0, 0};
    if (points.empty()) return b;
    b.x_min = b.x_max = points[0].x;
    b.y_min = b.y_max = points[0].y;
    for (const Point& p : points) {
      b.x_min = std::min(b.x_min, p.x);
      b.x_max = std::max(b.x_max, p.x);
      b.y_min = std::min(b.y_min, p.y);
      b.y_max = std::max(b.y_max, p.y);
    }
    return b;
  }

  int CellX(double x) const {
    const int c = static_cast<int>(std::floor((x - bounds.x_min) / cell));
    return std::clamp(c, 0, nx - 1);
  }
  int CellY(double y) const {
    const int c = static_cast<int>(std::floor((y - bounds.y_min) / cell));
    return std::clamp(c, 0, ny - 1);
  }
  int CellOf(const Point& p) const { return CellY(p.y) * nx + CellX(p.x); }
  size_t NumCells() const { return static_cast<size_t>(nx) * ny; }

  /// Squared distance from `p` to cell (cx, cy)'s rectangle (0 inside).
  /// With `open_edges`, boundary cells extend to infinity on their
  /// outward side — required when clamped edge cells may hold points
  /// that lie outside the bounds, where the finite box would not be a
  /// valid lower bound.
  double CellMinDist2(const Point& p, int cx, int cy,
                      bool open_edges = false) const {
    const double inf = std::numeric_limits<double>::infinity();
    const double x_lo =
        open_edges && cx == 0 ? -inf : bounds.x_min + cx * cell;
    const double x_hi =
        open_edges && cx == nx - 1 ? inf : bounds.x_min + (cx + 1) * cell;
    const double y_lo =
        open_edges && cy == 0 ? -inf : bounds.y_min + cy * cell;
    const double y_hi =
        open_edges && cy == ny - 1 ? inf : bounds.y_min + (cy + 1) * cell;
    const double dx = std::max({x_lo - p.x, p.x - x_hi, 0.0});
    const double dy = std::max({y_lo - p.y, p.y - y_hi, 0.0});
    return dx * dx + dy * dy;
  }
};

/// Two-phase exact disk filter shared by every index implementation:
/// squared-distance accept/reject away from the boundary, and the exact
/// `Distance(p, center) <= radius` predicate — identical to the
/// brute-force scan's — within the narrow ambiguous band.
struct RangeFilter {
  Point center;
  double radius;
  double r2_lo;
  double r2_hi;

  RangeFilter(const Point& c, double r)
      : center(c),
        radius(r),
        r2_lo(r * r * (1.0 - 1e-12)),
        r2_hi(r * r * (1.0 + 1e-12)) {}

  bool Accept(const Point& p) const {
    const double dx = p.x - center.x;
    const double dy = p.y - center.y;
    const double d2 = dx * dx + dy * dy;
    if (d2 > r2_hi) return false;
    return d2 <= r2_lo || Distance(p, center) <= radius;
  }

  /// Absolute slack for the covered-cell box: dwarfs the +-r
  /// arithmetic's rounding (so a boundary point's cell is never missed)
  /// yet stays far below any practical cell size.
  double BoxSlack() const {
    return 1e-9 * (1.0 + std::abs(center.x) + std::abs(center.y) + radius);
  }
};

}  // namespace psens

#endif  // PSENS_INDEX_GRID_GEOMETRY_H_
