#ifndef PSENS_INDEX_UNIFORM_GRID_H_
#define PSENS_INDEX_UNIFORM_GRID_H_

#include <vector>

#include "index/grid_geometry.h"
#include "index/spatial_index.h"

namespace psens {

/// Uniform bucket grid over the points' bounding box, stored CSR-style
/// (cell offsets + one flat index array). Coordinates are duplicated into
/// flat arrays in cell order, so probe scans read contiguous memory
/// instead of chasing the original point array — the difference between
/// cache hits and misses on 100k+ populations. Point indices within a
/// cell are ascending by construction (counting sort), so per-cell scans
/// emit candidates in index order and only the cross-cell merge needs a
/// final sort. Binning and pruning arithmetic is shared with the dynamic
/// grid (index/grid_geometry.h).
class UniformGridIndex : public SpatialIndex {
 public:
  explicit UniformGridIndex(const std::vector<Point>& points, double cell_size = 0.0);

  int size() const override { return static_cast<int>(cell_items_.size()); }
  void RangeQuery(const Point& center, double radius,
                  std::vector<int>* out) const override;
  void RectQuery(const Rect& rect, std::vector<int>* out) const override;
  int Nearest(const Point& p) const override;
  const char* Name() const override { return "uniform-grid"; }

  /// Fraction of grid cells holding at least one point (the density signal
  /// BuildSpatialIndexAuto keys on).
  double OccupiedCellFraction() const;

 private:
  GridGeometry geo_;
  std::vector<int> cell_start_;  // nx*ny + 1 CSR offsets
  std::vector<int> cell_items_;  // point indices, ascending per cell
  std::vector<double> xs_;       // coordinates in cell_items_ order
  std::vector<double> ys_;
};

}  // namespace psens

#endif  // PSENS_INDEX_UNIFORM_GRID_H_
