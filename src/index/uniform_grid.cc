#include "index/uniform_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace psens {
namespace {

/// Auto cell sizing: ~2 points per cell over the bounding box. Degenerate
/// boxes (all points collinear or identical) fall back to the larger
/// extent, and finally to 1.0 so the grid always has a valid geometry.
double AutoCellSize(const Rect& bounds, size_t n) {
  const double area = bounds.Area();
  if (area > 0.0 && n > 0) {
    return std::max(1e-9, std::sqrt(2.0 * area / static_cast<double>(n)));
  }
  const double extent = std::max(bounds.Width(), bounds.Height());
  if (extent > 0.0 && n > 0) {
    return std::max(1e-9, extent / std::max(1.0, std::sqrt(static_cast<double>(n))));
  }
  return 1.0;
}

}  // namespace

UniformGridIndex::UniformGridIndex(const std::vector<Point>& points, double cell_size) {
  if (!points.empty()) {
    bounds_.x_min = bounds_.x_max = points[0].x;
    bounds_.y_min = bounds_.y_max = points[0].y;
    for (const Point& p : points) {
      bounds_.x_min = std::min(bounds_.x_min, p.x);
      bounds_.x_max = std::max(bounds_.x_max, p.x);
      bounds_.y_min = std::min(bounds_.y_min, p.y);
      bounds_.y_max = std::max(bounds_.y_max, p.y);
    }
  }
  cell_ = cell_size > 0.0 ? cell_size : AutoCellSize(bounds_, points.size());
  nx_ = std::max(1, static_cast<int>(std::ceil(bounds_.Width() / cell_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(bounds_.Height() / cell_)));
  // Bound the table at ~4 cells per point: a caller-supplied tiny cell on a
  // huge box must not allocate an unbounded histogram.
  const long long max_cells =
      4LL * static_cast<long long>(std::max<size_t>(points.size(), 4)) + 16;
  while (static_cast<long long>(nx_) * ny_ > max_cells) {
    cell_ *= 2.0;
    nx_ = std::max(1, static_cast<int>(std::ceil(bounds_.Width() / cell_)));
    ny_ = std::max(1, static_cast<int>(std::ceil(bounds_.Height() / cell_)));
  }

  // Counting sort into CSR; iterating points in index order keeps each
  // cell's item list ascending. Cell ids are computed once and cached —
  // the floor/clamp arithmetic is the build's hottest instruction.
  std::vector<int> cell_of(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    cell_of[i] = CellY(points[i].y) * nx_ + CellX(points[i].x);
  }
  cell_start_.assign(static_cast<size_t>(nx_) * ny_ + 1, 0);
  for (int c : cell_of) ++cell_start_[c + 1];
  for (size_t c = 1; c < cell_start_.size(); ++c) cell_start_[c] += cell_start_[c - 1];
  cell_items_.resize(points.size());
  xs_.resize(points.size());
  ys_.resize(points.size());
  std::vector<int> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (size_t i = 0; i < points.size(); ++i) {
    const int k = cursor[cell_of[i]]++;
    cell_items_[k] = static_cast<int>(i);
    xs_[k] = points[i].x;
    ys_[k] = points[i].y;
  }
}

int UniformGridIndex::CellX(double x) const {
  const int c = static_cast<int>(std::floor((x - bounds_.x_min) / cell_));
  return std::clamp(c, 0, nx_ - 1);
}

int UniformGridIndex::CellY(double y) const {
  const int c = static_cast<int>(std::floor((y - bounds_.y_min) / cell_));
  return std::clamp(c, 0, ny_ - 1);
}

double UniformGridIndex::CellMinDist2(const Point& p, int cx, int cy) const {
  const double x_lo = bounds_.x_min + cx * cell_;
  const double y_lo = bounds_.y_min + cy * cell_;
  const double dx = std::max({x_lo - p.x, p.x - (x_lo + cell_), 0.0});
  const double dy = std::max({y_lo - p.y, p.y - (y_lo + cell_), 0.0});
  return dx * dx + dy * dy;
}

void UniformGridIndex::RangeQuery(const Point& center, double radius,
                                  std::vector<int>* out) const {
  out->clear();
  if (cell_items_.empty() || radius < 0.0) return;
  // Cell range with an absolute slack that dwarfs the +-r arithmetic's
  // rounding (so a boundary point's cell is never missed) yet stays far
  // below any practical cell size (so it almost never widens the box).
  const double slack = 1e-9 * (1.0 + std::abs(center.x) + std::abs(center.y) + radius);
  const int cx0 = CellX(center.x - radius - slack);
  const int cx1 = CellX(center.x + radius + slack);
  const int cy0 = CellY(center.y - radius - slack);
  const int cy1 = CellY(center.y + radius + slack);
  // Two-phase filter: squared-distance accept/reject away from the
  // boundary, the exact `Distance <= radius` predicate (identical to the
  // brute-force scan's) within the narrow ambiguous band.
  const double r2 = radius * radius;
  const double r2_lo = r2 * (1.0 - 1e-12);
  const double r2_hi = r2 * (1.0 + 1e-12);
  for (int cy = cy0; cy <= cy1; ++cy) {
    const int row = cy * nx_;
    for (int cx = cx0; cx <= cx1; ++cx) {
      const int c = row + cx;
      for (int k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        const double dx = xs_[k] - center.x;
        const double dy = ys_[k] - center.y;
        const double d2 = dx * dx + dy * dy;
        if (d2 > r2_hi) continue;
        if (d2 <= r2_lo ||
            Distance(Point{xs_[k], ys_[k]}, center) <= radius) {
          out->push_back(cell_items_[k]);
        }
      }
    }
  }
  std::sort(out->begin(), out->end());
}

void UniformGridIndex::RectQuery(const Rect& rect, std::vector<int>* out) const {
  out->clear();
  if (cell_items_.empty()) return;
  if (rect.x_max < bounds_.x_min || rect.x_min > bounds_.x_max ||
      rect.y_max < bounds_.y_min || rect.y_min > bounds_.y_max) {
    return;
  }
  // Rect bounds feed the exact Contains filter verbatim; the cell range
  // covers every cell that can hold a contained point because the floor
  // arithmetic is monotone in the coordinate (same binning as the build).
  const int cx0 = CellX(rect.x_min);
  const int cx1 = CellX(rect.x_max);
  const int cy0 = CellY(rect.y_min);
  const int cy1 = CellY(rect.y_max);
  for (int cy = cy0; cy <= cy1; ++cy) {
    const int row = cy * nx_;
    for (int cx = cx0; cx <= cx1; ++cx) {
      const int c = row + cx;
      for (int k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        if (rect.Contains(Point{xs_[k], ys_[k]})) out->push_back(cell_items_[k]);
      }
    }
  }
  std::sort(out->begin(), out->end());
}

int UniformGridIndex::Nearest(const Point& p) const {
  if (cell_items_.empty()) return -1;
  const int pcx = CellX(p.x);
  const int pcy = CellY(p.y);
  int best = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  const int max_ring = std::max(nx_, ny_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    bool any_cell_in_range = false;
    for (int cy = pcy - ring; cy <= pcy + ring; ++cy) {
      if (cy < 0 || cy >= ny_) continue;
      for (int cx = pcx - ring; cx <= pcx + ring; ++cx) {
        if (cx < 0 || cx >= nx_) continue;
        // Only the ring's perimeter; the interior was handled earlier.
        if (ring > 0 && std::abs(cx - pcx) != ring && std::abs(cy - pcy) != ring)
          continue;
        // <= so that an equal-distance, lower-index point is still found.
        if (CellMinDist2(p, cx, cy) > best_d2) continue;
        any_cell_in_range = true;
        const int c = cy * nx_ + cx;
        for (int k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
          const double dx = xs_[k] - p.x;
          const double dy = ys_[k] - p.y;
          const double d2 = dx * dx + dy * dy;
          const int i = cell_items_[k];
          if (d2 < best_d2 || (d2 == best_d2 && i < best)) {
            best_d2 = d2;
            best = i;
          }
        }
      }
    }
    if (best >= 0 && !any_cell_in_range && ring > 0) break;
  }
  return best;
}

double UniformGridIndex::OccupiedCellFraction() const {
  const size_t total = static_cast<size_t>(nx_) * ny_;
  if (total == 0) return 0.0;
  size_t occupied = 0;
  for (size_t c = 0; c + 1 < cell_start_.size(); ++c) {
    if (cell_start_[c + 1] > cell_start_[c]) ++occupied;
  }
  return static_cast<double>(occupied) / static_cast<double>(total);
}

}  // namespace psens
