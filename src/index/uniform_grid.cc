#include "index/uniform_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace psens {

UniformGridIndex::UniformGridIndex(const std::vector<Point>& points, double cell_size) {
  geo_ = GridGeometry::Layout(GridGeometry::BoundsOf(points), points.size(),
                              cell_size);

  // Counting sort into CSR; iterating points in index order keeps each
  // cell's item list ascending. Cell ids are computed once and cached —
  // the floor/clamp arithmetic is the build's hottest instruction.
  std::vector<int> cell_of(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    cell_of[i] = geo_.CellOf(points[i]);
  }
  cell_start_.assign(geo_.NumCells() + 1, 0);
  for (int c : cell_of) ++cell_start_[c + 1];
  for (size_t c = 1; c < cell_start_.size(); ++c) cell_start_[c] += cell_start_[c - 1];
  cell_items_.resize(points.size());
  xs_.resize(points.size());
  ys_.resize(points.size());
  std::vector<int> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (size_t i = 0; i < points.size(); ++i) {
    const int k = cursor[cell_of[i]]++;
    cell_items_[k] = static_cast<int>(i);
    xs_[k] = points[i].x;
    ys_[k] = points[i].y;
  }
}

void UniformGridIndex::RangeQuery(const Point& center, double radius,
                                  std::vector<int>* out) const {
  out->clear();
  if (cell_items_.empty() || radius < 0.0) return;
  const RangeFilter filter(center, radius);
  const double slack = filter.BoxSlack();
  const int cx0 = geo_.CellX(center.x - radius - slack);
  const int cx1 = geo_.CellX(center.x + radius + slack);
  const int cy0 = geo_.CellY(center.y - radius - slack);
  const int cy1 = geo_.CellY(center.y + radius + slack);
  for (int cy = cy0; cy <= cy1; ++cy) {
    const int row = cy * geo_.nx;
    for (int cx = cx0; cx <= cx1; ++cx) {
      const int c = row + cx;
      for (int k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        if (filter.Accept(Point{xs_[k], ys_[k]})) {
          out->push_back(cell_items_[k]);
        }
      }
    }
  }
  std::sort(out->begin(), out->end());
}

void UniformGridIndex::RectQuery(const Rect& rect, std::vector<int>* out) const {
  out->clear();
  if (cell_items_.empty()) return;
  if (rect.x_max < geo_.bounds.x_min || rect.x_min > geo_.bounds.x_max ||
      rect.y_max < geo_.bounds.y_min || rect.y_min > geo_.bounds.y_max) {
    return;
  }
  // Rect bounds feed the exact Contains filter verbatim; the cell range
  // covers every cell that can hold a contained point because the floor
  // arithmetic is monotone in the coordinate (same binning as the build).
  const int cx0 = geo_.CellX(rect.x_min);
  const int cx1 = geo_.CellX(rect.x_max);
  const int cy0 = geo_.CellY(rect.y_min);
  const int cy1 = geo_.CellY(rect.y_max);
  for (int cy = cy0; cy <= cy1; ++cy) {
    const int row = cy * geo_.nx;
    for (int cx = cx0; cx <= cx1; ++cx) {
      const int c = row + cx;
      for (int k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        if (rect.Contains(Point{xs_[k], ys_[k]})) out->push_back(cell_items_[k]);
      }
    }
  }
  std::sort(out->begin(), out->end());
}

int UniformGridIndex::Nearest(const Point& p) const {
  if (cell_items_.empty()) return -1;
  const int pcx = geo_.CellX(p.x);
  const int pcy = geo_.CellY(p.y);
  int best = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  const int max_ring = std::max(geo_.nx, geo_.ny);
  for (int ring = 0; ring <= max_ring; ++ring) {
    bool any_cell_in_range = false;
    for (int cy = pcy - ring; cy <= pcy + ring; ++cy) {
      if (cy < 0 || cy >= geo_.ny) continue;
      for (int cx = pcx - ring; cx <= pcx + ring; ++cx) {
        if (cx < 0 || cx >= geo_.nx) continue;
        // Only the ring's perimeter; the interior was handled earlier.
        if (ring > 0 && std::abs(cx - pcx) != ring && std::abs(cy - pcy) != ring)
          continue;
        // <= so that an equal-distance, lower-index point is still found.
        if (geo_.CellMinDist2(p, cx, cy) > best_d2) continue;
        any_cell_in_range = true;
        const int c = cy * geo_.nx + cx;
        for (int k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
          const double dx = xs_[k] - p.x;
          const double dy = ys_[k] - p.y;
          const double d2 = dx * dx + dy * dy;
          const int i = cell_items_[k];
          if (d2 < best_d2 || (d2 == best_d2 && i < best)) {
            best_d2 = d2;
            best = i;
          }
        }
      }
    }
    if (best >= 0 && !any_cell_in_range && ring > 0) break;
  }
  return best;
}

double UniformGridIndex::OccupiedCellFraction() const {
  const size_t total = geo_.NumCells();
  if (total == 0) return 0.0;
  size_t occupied = 0;
  for (size_t c = 0; c + 1 < cell_start_.size(); ++c) {
    if (cell_start_[c + 1] > cell_start_[c]) ++occupied;
  }
  return static_cast<double>(occupied) / static_cast<double>(total);
}

}  // namespace psens
