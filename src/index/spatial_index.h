#ifndef PSENS_INDEX_SPATIAL_INDEX_H_
#define PSENS_INDEX_SPATIAL_INDEX_H_

#include <memory>
#include <vector>

#include "common/geometry.h"

namespace psens {

/// Spatial index over a set of 2-D points (the slot's sensor locations).
/// All query methods return *exactly* the same point set a brute-force
/// scan with the same predicate would return — interior pruning is
/// conservative and the final filter uses the same `Distance` /
/// `Rect::Contains` arithmetic as the valuation code — and results are
/// always sorted ascending by point index. Both properties together are
/// what lets the schedulers swap a full scan for an index probe without
/// changing a single selected sensor, payment, or tie-break
/// (see docs/ARCHITECTURE.md, "Spatial index layer").
///
/// Indexes come in two flavours. The static structures (`UniformGridIndex`,
/// `KdTreeIndex`) are built once from a point vector whose positions
/// 0..n-1 are the indices queries hand back. The dynamic structures
/// (src/index/dynamic_index.h) additionally support Insert/Remove/Move
/// keyed by arbitrary non-negative ids, so a long-running engine can repair
/// the index from a churn delta instead of rebuilding it each slot.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Number of indexed points.
  virtual int size() const = 0;

  /// Dynamic maintenance, O(delta) per call on implementations that
  /// support it. The default implementations return false ("static index —
  /// rebuild instead"). `id` is the point index queries return; dynamic
  /// implementations accept sparse id sets.
  virtual bool Insert(int id, const Point& p) {
    (void)id;
    (void)p;
    return false;
  }
  virtual bool Remove(int id) {
    (void)id;
    return false;
  }
  /// Relocates `id` (equivalent to Remove + Insert, but implementations
  /// can short-circuit moves within the same bucket).
  virtual bool Move(int id, const Point& p) {
    (void)id;
    (void)p;
    return false;
  }

  /// Appends to `out` the indices (ascending) of all points p with
  /// Distance(p, center) <= radius. `out` is cleared first.
  virtual void RangeQuery(const Point& center, double radius,
                          std::vector<int>* out) const = 0;

  /// Appends to `out` the indices (ascending) of all points contained in
  /// `rect` (inclusive bounds, same as Rect::Contains). `out` is cleared
  /// first.
  virtual void RectQuery(const Rect& rect, std::vector<int>* out) const = 0;

  /// Index of the point nearest to `p`; ties broken toward the lowest
  /// index; -1 when the index is empty.
  virtual int Nearest(const Point& p) const = 0;

  /// Human-readable implementation name ("uniform-grid", "kd-tree").
  virtual const char* Name() const = 0;
};

/// Uniform bucket grid. O(1) cell lookup; ideal when points are dense and
/// roughly evenly spread (most cells occupied). `cell_size <= 0` picks a
/// cell size targeting ~2 points per cell over the bounding box.
std::unique_ptr<SpatialIndex> BuildUniformGridIndex(const std::vector<Point>& points,
                                                    double cell_size = 0.0);

/// Balanced k-d tree (median splits, exact subtree bounding boxes).
/// Robust to heavy clustering, collinear and duplicate points.
std::unique_ptr<SpatialIndex> BuildKdTreeIndex(const std::vector<Point>& points);

/// Density-based choice between the two: builds the auto-sized grid's
/// occupancy histogram in O(n) and keeps the grid when at least
/// `kGridOccupancyThreshold` of its cells are occupied (dense, even
/// population); falls back to the k-d tree for skewed/clustered
/// populations where a grid would be mostly empty cells.
std::unique_ptr<SpatialIndex> BuildSpatialIndexAuto(const std::vector<Point>& points);

/// Occupied-cell fraction below which BuildSpatialIndexAuto prefers the
/// k-d tree.
inline constexpr double kGridOccupancyThreshold = 0.20;

}  // namespace psens

#endif  // PSENS_INDEX_SPATIAL_INDEX_H_
