#ifndef PSENS_INDEX_DYNAMIC_INDEX_H_
#define PSENS_INDEX_DYNAMIC_INDEX_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "index/grid_geometry.h"
#include "index/kd_tree.h"
#include "index/spatial_index.h"

namespace psens {

enum class SlotIndexPolicy;  // core/slot.h

/// Dynamic uniform bucket grid keyed by sparse non-negative ids. Unlike
/// `UniformGridIndex` (CSR over a frozen point vector), cells hold plain
/// id vectors, so Insert/Remove/Move are true O(cell-occupancy) updates —
/// a slot with 1% sensor churn pays O(churn) index maintenance instead of
/// an O(n) rebuild. The grid geometry is fixed at construction (bounds +
/// expected population); points outside the bounds land in clamped edge
/// cells, exactly like the static grid's boundary handling, so queries
/// remain exact. Same exactness contract as every SpatialIndex: final
/// filters use the brute-force `Distance`/`Contains` predicates and
/// results are ascending by id.
class DynamicGridIndex : public SpatialIndex {
 public:
  /// `expected_count` sizes the cells (~2 points per cell when the live
  /// population is near it); the structure stays correct at any size.
  DynamicGridIndex(const Rect& bounds, int expected_count);

  int size() const override { return live_count_; }
  bool Insert(int id, const Point& p) override;
  bool Remove(int id) override;
  bool Move(int id, const Point& p) override;
  void RangeQuery(const Point& center, double radius,
                  std::vector<int>* out) const override;
  void RectQuery(const Rect& rect, std::vector<int>* out) const override;
  int Nearest(const Point& p) const override;
  const char* Name() const override { return "dynamic-grid"; }

  /// Fraction of cells holding at least one point, maintained
  /// incrementally (the density signal the kAuto re-choice keys on).
  double OccupiedCellFraction() const;

  /// True when the live population has drifted at least 4x away from the
  /// size the cell layout was sized for — updates and probes then pay for
  /// over-full (or uselessly empty) cells and the owner should re-lay the
  /// grid.
  bool GeometryStale() const;

  /// Appends every live (id, point) pair, ascending by id (used when the
  /// auto policy migrates the population into the other backend).
  void CollectLive(std::vector<std::pair<int, Point>>* out) const;

 private:
  /// Cell storage tuned for the auto sizing's ~2 points per cell: up to
  /// kInline ids live inside the cell record itself, so the common
  /// insert/remove touches exactly one cache line instead of chasing a
  /// per-cell heap vector. Crowded cells (cluster cores) spill to a heap
  /// block with amortized-doubling capacity.
  struct Cell {
    int32_t count = 0;
    int32_t capacity = 0;  // 0 while inline; heap capacity after spilling
    static constexpr int kInline = 6;
    union {
      int32_t inline_ids[kInline];
      int32_t* heap_ids;
    };

    Cell() : inline_ids{} {}
    bool spilled() const { return capacity > 0; }
    const int32_t* data() const { return spilled() ? heap_ids : inline_ids; }
    int32_t* data() { return spilled() ? heap_ids : inline_ids; }
  };

  void EnsureId(int id);
  void CellPush(Cell& cell, int id);
  void CellErase(Cell& cell, int id);
  void FreeCells();

  GridGeometry geo_;
  int live_count_ = 0;
  int occupied_cells_ = 0;
  /// Live points outside `bounds_` (clamped into edge cells). While any
  /// exist, Nearest's pruning treats edge cells as unbounded outward.
  int outlier_count_ = 0;
  std::vector<Cell> cells_;       // ids, unsorted within a cell
  std::vector<Point> pos_of_id_;  // dense by id
  std::vector<char> live_;        // dense by id

 public:
  ~DynamicGridIndex() override;
  DynamicGridIndex(const DynamicGridIndex&) = delete;
  DynamicGridIndex& operator=(const DynamicGridIndex&) = delete;
};

/// Dynamic k-d tree keyed by sparse ids: a frozen `KdTreeIndex` over the
/// last snapshot plus a delta — tombstones for removed snapshot points and
/// a linearly-scanned side buffer for inserts (a move is tombstone +
/// insert). When the delta outgrows `RebuildThreshold()` the snapshot is
/// rebuilt from the live set, so maintenance cost is O(churn) amortized
/// while queries stay O(log n + churn). Exactness contract as above.
class BufferedKdTreeIndex : public SpatialIndex {
 public:
  explicit BufferedKdTreeIndex(std::vector<std::pair<int, Point>> points = {});

  int size() const override { return live_count_; }
  bool Insert(int id, const Point& p) override;
  bool Remove(int id) override;
  bool Move(int id, const Point& p) override;
  void RangeQuery(const Point& center, double radius,
                  std::vector<int>* out) const override;
  void RectQuery(const Rect& rect, std::vector<int>* out) const override;
  int Nearest(const Point& p) const override;
  const char* Name() const override { return "kd-buffered"; }

  /// Delta size (tombstones + buffered inserts) that triggers a snapshot
  /// rebuild: a quarter of the snapshot, floored so tiny trees don't
  /// thrash.
  int RebuildThreshold() const;
  /// Snapshot rebuilds performed so far (observability for tests/benches).
  int64_t rebuilds() const { return rebuilds_; }

  void CollectLive(std::vector<std::pair<int, Point>>* out) const;

 private:
  void EnsureId(int id);
  void MaybeRebuild();
  void Rebuild();

  std::unique_ptr<KdTreeIndex> base_;   // over snapshot positions
  std::vector<int> snapshot_ids_;       // snapshot position -> id
  std::vector<char> dead_;              // snapshot position -> tombstoned
  int tombstones_ = 0;
  std::vector<int> buffer_;             // inserted ids, unsorted
  int live_count_ = 0;
  int64_t rebuilds_ = 0;
  // Dense by id:
  std::vector<Point> pos_of_id_;
  std::vector<int> snapshot_pos_of_id_;  // -1 when not in snapshot
  std::vector<int> buffer_pos_of_id_;    // -1 when not in buffer
  /// Snapshot-probe scratch reused across queries — probes sit on the
  /// scheduler candidate-pruning hot path, and a fresh vector per probe
  /// costs more than the probe. Makes queries non-reentrant per
  /// instance; one index per thread (the engine already is).
  mutable std::vector<int> snap_scratch_;
};

/// Policy-driven dynamic index: owns one of the two backends per
/// `SlotIndexPolicy` (kGrid, kKdTree, or kAuto's density-based choice) and
/// forwards the SpatialIndex interface. Under kAuto the choice is
/// re-evaluated only when the population has *drifted* — cumulative
/// membership churn since the last decision exceeding a quarter of the
/// population — at which point the grid-occupancy probe runs again and the
/// live set migrates if the verdict changed. Steady-state slots therefore
/// never pay a re-probe.
class DynamicSpatialIndex : public SpatialIndex {
 public:
  DynamicSpatialIndex(const Rect& bounds, SlotIndexPolicy policy,
                      int expected_count);

  int size() const override { return backend_->size(); }
  bool Insert(int id, const Point& p) override;
  bool Remove(int id) override;
  bool Move(int id, const Point& p) override;
  void RangeQuery(const Point& center, double radius,
                  std::vector<int>* out) const override {
    backend_->RangeQuery(center, radius, out);
  }
  void RectQuery(const Rect& rect, std::vector<int>* out) const override {
    backend_->RectQuery(rect, out);
  }
  int Nearest(const Point& p) const override { return backend_->Nearest(p); }
  const char* Name() const override { return backend_->Name(); }

 private:
  void MaybeRechoose();

  Rect bounds_;
  SlotIndexPolicy policy_;
  int expected_count_;
  /// Membership inserts+removes since the last kAuto decision.
  int churn_since_choice_ = 0;
  bool grid_active_ = true;
  std::unique_ptr<DynamicGridIndex> grid_;
  std::unique_ptr<BufferedKdTreeIndex> kd_;
  SpatialIndex* backend_ = nullptr;
};

}  // namespace psens

#endif  // PSENS_INDEX_DYNAMIC_INDEX_H_
