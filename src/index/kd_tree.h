#ifndef PSENS_INDEX_KD_TREE_H_
#define PSENS_INDEX_KD_TREE_H_

#include <vector>

#include "index/spatial_index.h"

namespace psens {

/// Balanced 2-d tree: median splits on the wider axis, exact per-subtree
/// bounding boxes, leaves of up to kLeafSize points. Interior pruning uses
/// conservative squared-distance bounds with a small relative slack; every
/// surviving leaf point goes through the exact `Distance`/`Contains`
/// predicate, so results match a brute-force scan bit for bit. Handles
/// duplicate and collinear points (degenerate boxes just stop splitting
/// early or split by index).
class KdTreeIndex : public SpatialIndex {
 public:
  explicit KdTreeIndex(const std::vector<Point>& points);

  int size() const override { return static_cast<int>(order_.size()); }
  void RangeQuery(const Point& center, double radius,
                  std::vector<int>* out) const override;
  void RectQuery(const Rect& rect, std::vector<int>* out) const override;
  int Nearest(const Point& p) const override;
  const char* Name() const override { return "kd-tree"; }

  static constexpr int kLeafSize = 16;

 private:
  struct Node {
    Rect bbox{0, 0, 0, 0};
    int begin = 0;   // range into order_
    int end = 0;
    int left = -1;   // -1: leaf
    int right = -1;
  };

  int Build(const std::vector<Point>& points, int begin, int end);
  void RangeRecurse(int node, const Point& center, double radius, double r2,
                    std::vector<int>* out) const;
  void RectRecurse(int node, const Rect& rect, std::vector<int>* out) const;
  void NearestRecurse(int node, const Point& p, int* best, double* best_d2) const;
  static double BoxMinDist2(const Rect& b, const Point& p);

  std::vector<int> order_;   // point indices, leaf ranges contiguous
  std::vector<double> xs_;   // coordinates in order_ layout: leaf scans
  std::vector<double> ys_;   //   read contiguous memory (cache locality)
  std::vector<Node> nodes_;  // nodes_[0] is the root (when non-empty)
};

}  // namespace psens

#endif  // PSENS_INDEX_KD_TREE_H_
