#include "index/dynamic_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/slot.h"

namespace psens {

// ---------------------------------------------------------------------------
// DynamicGridIndex
// ---------------------------------------------------------------------------

DynamicGridIndex::DynamicGridIndex(const Rect& bounds, int expected_count) {
  geo_ = GridGeometry::Layout(
      bounds, static_cast<size_t>(std::max(expected_count, 1)),
      /*cell_size=*/0.0);
  cells_.resize(geo_.NumCells());
}

DynamicGridIndex::~DynamicGridIndex() { FreeCells(); }

void DynamicGridIndex::FreeCells() {
  for (Cell& cell : cells_) {
    if (cell.spilled()) delete[] cell.heap_ids;
  }
}

void DynamicGridIndex::CellPush(Cell& cell, int id) {
  if (!cell.spilled()) {
    if (cell.count < Cell::kInline) {
      cell.inline_ids[cell.count++] = id;
      return;
    }
    int32_t* heap = new int32_t[2 * Cell::kInline];
    std::copy(cell.inline_ids, cell.inline_ids + Cell::kInline, heap);
    cell.heap_ids = heap;
    cell.capacity = 2 * Cell::kInline;
  } else if (cell.count == cell.capacity) {
    int32_t* heap = new int32_t[2 * cell.capacity];
    std::copy(cell.heap_ids, cell.heap_ids + cell.count, heap);
    delete[] cell.heap_ids;
    cell.heap_ids = heap;
    cell.capacity *= 2;
  }
  cell.heap_ids[cell.count++] = id;
}

void DynamicGridIndex::CellErase(Cell& cell, int id) {
  int32_t* ids = cell.data();
  for (int k = 0; k < cell.count; ++k) {
    if (ids[k] == id) {
      ids[k] = ids[cell.count - 1];
      --cell.count;
      return;
    }
  }
}

void DynamicGridIndex::EnsureId(int id) {
  if (id >= static_cast<int>(live_.size())) {
    live_.resize(static_cast<size_t>(id) + 1, 0);
    pos_of_id_.resize(static_cast<size_t>(id) + 1);
  }
}

bool DynamicGridIndex::Insert(int id, const Point& p) {
  if (id < 0) return false;
  EnsureId(id);
  if (live_[id]) return Move(id, p);
  Cell& cell = cells_[geo_.CellOf(p)];
  if (cell.count == 0) ++occupied_cells_;
  CellPush(cell, id);
  if (!geo_.bounds.Contains(p)) ++outlier_count_;
  pos_of_id_[id] = p;
  live_[id] = 1;
  ++live_count_;
  return true;
}

bool DynamicGridIndex::Remove(int id) {
  if (id < 0 || id >= static_cast<int>(live_.size()) || !live_[id]) return false;
  Cell& cell = cells_[geo_.CellOf(pos_of_id_[id])];
  CellErase(cell, id);
  if (cell.count == 0) --occupied_cells_;
  if (!geo_.bounds.Contains(pos_of_id_[id])) --outlier_count_;
  live_[id] = 0;
  --live_count_;
  return true;
}

bool DynamicGridIndex::Move(int id, const Point& p) {
  if (id < 0 || id >= static_cast<int>(live_.size()) || !live_[id]) {
    return Insert(id, p);
  }
  const int old_cell = geo_.CellOf(pos_of_id_[id]);
  const int new_cell = geo_.CellOf(p);
  if (old_cell == new_cell) {
    if (!geo_.bounds.Contains(pos_of_id_[id])) --outlier_count_;
    if (!geo_.bounds.Contains(p)) ++outlier_count_;
    pos_of_id_[id] = p;
    return true;
  }
  Remove(id);
  return Insert(id, p);
}

void DynamicGridIndex::RangeQuery(const Point& center, double radius,
                                  std::vector<int>* out) const {
  out->clear();
  if (live_count_ == 0 || radius < 0.0) return;
  const RangeFilter filter(center, radius);
  const double slack = filter.BoxSlack();
  const int cx0 = geo_.CellX(center.x - radius - slack);
  const int cx1 = geo_.CellX(center.x + radius + slack);
  const int cy0 = geo_.CellY(center.y - radius - slack);
  const int cy1 = geo_.CellY(center.y + radius + slack);
  for (int cy = cy0; cy <= cy1; ++cy) {
    const int row = cy * geo_.nx;
    for (int cx = cx0; cx <= cx1; ++cx) {
      const Cell& cell = cells_[row + cx];
      const int32_t* ids = cell.data();
      for (int k = 0; k < cell.count; ++k) {
        if (filter.Accept(pos_of_id_[ids[k]])) out->push_back(ids[k]);
      }
    }
  }
  std::sort(out->begin(), out->end());
}

void DynamicGridIndex::RectQuery(const Rect& rect, std::vector<int>* out) const {
  out->clear();
  if (live_count_ == 0) return;
  // Unlike the static grid, the fixed bounds may not cover every point
  // (clamped edge cells hold outliers), so there is no early bounds
  // rejection; the clamped cell range still covers every candidate cell.
  const int cx0 = geo_.CellX(rect.x_min);
  const int cx1 = geo_.CellX(rect.x_max);
  const int cy0 = geo_.CellY(rect.y_min);
  const int cy1 = geo_.CellY(rect.y_max);
  if (rect.x_max < rect.x_min || rect.y_max < rect.y_min) return;
  for (int cy = cy0; cy <= cy1; ++cy) {
    const int row = cy * geo_.nx;
    for (int cx = cx0; cx <= cx1; ++cx) {
      const Cell& cell = cells_[row + cx];
      const int32_t* ids = cell.data();
      for (int k = 0; k < cell.count; ++k) {
        if (rect.Contains(pos_of_id_[ids[k]])) out->push_back(ids[k]);
      }
    }
  }
  std::sort(out->begin(), out->end());
}

int DynamicGridIndex::Nearest(const Point& p) const {
  if (live_count_ == 0) return -1;
  const int pcx = geo_.CellX(p.x);
  const int pcy = geo_.CellY(p.y);
  int best = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  const int max_ring = std::max(geo_.nx, geo_.ny);
  for (int ring = 0; ring <= max_ring; ++ring) {
    bool any_cell_in_range = false;
    for (int cy = pcy - ring; cy <= pcy + ring; ++cy) {
      if (cy < 0 || cy >= geo_.ny) continue;
      for (int cx = pcx - ring; cx <= pcx + ring; ++cx) {
        if (cx < 0 || cx >= geo_.nx) continue;
        if (ring > 0 && std::abs(cx - pcx) != ring && std::abs(cy - pcy) != ring)
          continue;
        if (geo_.CellMinDist2(p, cx, cy, /*open_edges=*/outlier_count_ > 0) > best_d2) continue;
        any_cell_in_range = true;
        const Cell& cell = cells_[cy * geo_.nx + cx];
        const int32_t* ids = cell.data();
        for (int k = 0; k < cell.count; ++k) {
          const int id = ids[k];
          const double dx = pos_of_id_[id].x - p.x;
          const double dy = pos_of_id_[id].y - p.y;
          const double d2 = dx * dx + dy * dy;
          if (d2 < best_d2 || (d2 == best_d2 && id < best)) {
            best_d2 = d2;
            best = id;
          }
        }
      }
    }
    if (best >= 0 && !any_cell_in_range && ring > 0) break;
  }
  return best;
}

double DynamicGridIndex::OccupiedCellFraction() const {
  const size_t total = cells_.size();
  return total == 0 ? 0.0
                    : static_cast<double>(occupied_cells_) /
                          static_cast<double>(total);
}

bool DynamicGridIndex::GeometryStale() const {
  // Laid out for ~2 points per cell; stale when the live population is 4x
  // off that target in either direction.
  const double per_cell =
      static_cast<double>(live_count_) / static_cast<double>(cells_.size());
  return per_cell > 8.0 || (per_cell < 0.5 && live_count_ > 64);
}

void DynamicGridIndex::CollectLive(std::vector<std::pair<int, Point>>* out) const {
  for (int id = 0; id < static_cast<int>(live_.size()); ++id) {
    if (live_[id]) out->emplace_back(id, pos_of_id_[id]);
  }
}

// ---------------------------------------------------------------------------
// BufferedKdTreeIndex
// ---------------------------------------------------------------------------

BufferedKdTreeIndex::BufferedKdTreeIndex(std::vector<std::pair<int, Point>> points) {
  for (const auto& [id, p] : points) {
    EnsureId(id);
    pos_of_id_[id] = p;
    buffer_.push_back(id);
    buffer_pos_of_id_[id] = static_cast<int>(buffer_.size()) - 1;
    ++live_count_;
  }
  if (!buffer_.empty()) Rebuild();
}

void BufferedKdTreeIndex::EnsureId(int id) {
  if (id >= static_cast<int>(pos_of_id_.size())) {
    pos_of_id_.resize(static_cast<size_t>(id) + 1);
    snapshot_pos_of_id_.resize(static_cast<size_t>(id) + 1, -1);
    buffer_pos_of_id_.resize(static_cast<size_t>(id) + 1, -1);
  }
}

int BufferedKdTreeIndex::RebuildThreshold() const {
  return std::max(64, static_cast<int>(snapshot_ids_.size()) / 4);
}

void BufferedKdTreeIndex::MaybeRebuild() {
  if (tombstones_ + static_cast<int>(buffer_.size()) > RebuildThreshold()) {
    Rebuild();
  }
}

void BufferedKdTreeIndex::Rebuild() {
  std::vector<std::pair<int, Point>> live;
  live.reserve(static_cast<size_t>(live_count_));
  CollectLive(&live);  // ascending by id
  snapshot_ids_.clear();
  snapshot_ids_.reserve(live.size());
  std::vector<Point> points;
  points.reserve(live.size());
  std::fill(snapshot_pos_of_id_.begin(), snapshot_pos_of_id_.end(), -1);
  std::fill(buffer_pos_of_id_.begin(), buffer_pos_of_id_.end(), -1);
  for (const auto& [id, p] : live) {
    snapshot_pos_of_id_[id] = static_cast<int>(snapshot_ids_.size());
    snapshot_ids_.push_back(id);
    points.push_back(p);
  }
  base_ = points.empty() ? nullptr : std::make_unique<KdTreeIndex>(points);
  dead_.assign(snapshot_ids_.size(), 0);
  tombstones_ = 0;
  buffer_.clear();
  ++rebuilds_;
}

bool BufferedKdTreeIndex::Insert(int id, const Point& p) {
  if (id < 0) return false;
  EnsureId(id);
  if (buffer_pos_of_id_[id] >= 0 ||
      (snapshot_pos_of_id_[id] >= 0 && !dead_[snapshot_pos_of_id_[id]])) {
    return Move(id, p);
  }
  pos_of_id_[id] = p;
  buffer_.push_back(id);
  buffer_pos_of_id_[id] = static_cast<int>(buffer_.size()) - 1;
  ++live_count_;
  MaybeRebuild();
  return true;
}

bool BufferedKdTreeIndex::Remove(int id) {
  if (id < 0 || id >= static_cast<int>(pos_of_id_.size())) return false;
  if (buffer_pos_of_id_[id] >= 0) {
    const int pos = buffer_pos_of_id_[id];
    const int moved = buffer_.back();
    buffer_[pos] = moved;
    buffer_pos_of_id_[moved] = pos;
    buffer_.pop_back();
    buffer_pos_of_id_[id] = -1;
    --live_count_;
    return true;
  }
  const int spos = snapshot_pos_of_id_[id];
  if (spos < 0 || dead_[spos]) return false;
  dead_[spos] = 1;
  ++tombstones_;
  --live_count_;
  MaybeRebuild();
  return true;
}

bool BufferedKdTreeIndex::Move(int id, const Point& p) {
  if (id < 0 || id >= static_cast<int>(pos_of_id_.size())) return Insert(id, p);
  if (buffer_pos_of_id_[id] >= 0) {
    pos_of_id_[id] = p;  // buffer points are scanned with live coordinates
    return true;
  }
  const int spos = snapshot_pos_of_id_[id];
  if (spos < 0 || dead_[spos]) return Insert(id, p);
  // Snapshot point relocating: tombstone the frozen copy, track it in the
  // buffer at its new position.
  Remove(id);
  return Insert(id, p);
}

void BufferedKdTreeIndex::RangeQuery(const Point& center, double radius,
                                     std::vector<int>* out) const {
  out->clear();
  if (radius < 0.0) return;
  if (base_ != nullptr) {
    base_->RangeQuery(center, radius, &snap_scratch_);
    for (int pos : snap_scratch_) {
      if (!dead_[pos]) out->push_back(snapshot_ids_[pos]);
    }
  }
  for (int id : buffer_) {
    if (Distance(pos_of_id_[id], center) <= radius) out->push_back(id);
  }
  std::sort(out->begin(), out->end());
}

void BufferedKdTreeIndex::RectQuery(const Rect& rect, std::vector<int>* out) const {
  out->clear();
  if (base_ != nullptr) {
    base_->RectQuery(rect, &snap_scratch_);
    for (int pos : snap_scratch_) {
      if (!dead_[pos]) out->push_back(snapshot_ids_[pos]);
    }
  }
  for (int id : buffer_) {
    if (rect.Contains(pos_of_id_[id])) out->push_back(id);
  }
  std::sort(out->begin(), out->end());
}

int BufferedKdTreeIndex::Nearest(const Point& p) const {
  if (live_count_ == 0) return -1;
  int best = -1;
  double best_d2 = std::numeric_limits<double>::infinity();
  const auto consider = [&](int id) {
    const double dx = pos_of_id_[id].x - p.x;
    const double dy = pos_of_id_[id].y - p.y;
    const double d2 = dx * dx + dy * dy;
    if (d2 < best_d2 || (d2 == best_d2 && id < best)) {
      best_d2 = d2;
      best = id;
    }
  };
  if (base_ != nullptr) {
    if (tombstones_ == 0) {
      // Snapshot positions ascend with ids, so the base tie-break (lowest
      // position) is the lowest id.
      const int pos = base_->Nearest(p);
      if (pos >= 0) consider(snapshot_ids_[pos]);
    } else {
      // Tombstones can hide the base argmin; fall back to a snapshot scan.
      // Nearest is not on any scheduler hot path (candidate pruning uses
      // Range/Rect probes); the delta stays below RebuildThreshold anyway.
      for (size_t pos = 0; pos < snapshot_ids_.size(); ++pos) {
        if (!dead_[pos]) consider(snapshot_ids_[pos]);
      }
    }
  }
  for (int id : buffer_) consider(id);
  return best;
}

void BufferedKdTreeIndex::CollectLive(
    std::vector<std::pair<int, Point>>* out) const {
  const size_t begin = out->size();
  for (size_t pos = 0; pos < snapshot_ids_.size(); ++pos) {
    if (!dead_[pos]) out->emplace_back(snapshot_ids_[pos], pos_of_id_[snapshot_ids_[pos]]);
  }
  for (int id : buffer_) out->emplace_back(id, pos_of_id_[id]);
  std::sort(out->begin() + begin, out->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

// ---------------------------------------------------------------------------
// DynamicSpatialIndex
// ---------------------------------------------------------------------------

DynamicSpatialIndex::DynamicSpatialIndex(const Rect& bounds,
                                         SlotIndexPolicy policy,
                                         int expected_count)
    : bounds_(bounds), policy_(policy), expected_count_(expected_count) {
  grid_active_ = policy != SlotIndexPolicy::kKdTree;
  if (grid_active_) {
    grid_ = std::make_unique<DynamicGridIndex>(bounds_, expected_count_);
    backend_ = grid_.get();
  } else {
    kd_ = std::make_unique<BufferedKdTreeIndex>();
    backend_ = kd_.get();
  }
}

bool DynamicSpatialIndex::Insert(int id, const Point& p) {
  const bool ok = backend_->Insert(id, p);
  ++churn_since_choice_;
  MaybeRechoose();
  return ok;
}

bool DynamicSpatialIndex::Remove(int id) {
  const bool ok = backend_->Remove(id);
  ++churn_since_choice_;
  MaybeRechoose();
  return ok;
}

bool DynamicSpatialIndex::Move(int id, const Point& p) {
  // Moves shift density without changing membership; they count toward
  // drift at a discount (many tiny moves ~ one churn event) — counting
  // them fully would re-probe every slot under mobility traces.
  return backend_->Move(id, p);
}

void DynamicSpatialIndex::MaybeRechoose() {
  if (policy_ != SlotIndexPolicy::kAuto) return;
  if (churn_since_choice_ <= std::max(64, backend_->size() / 4)) return;
  churn_since_choice_ = 0;
  // Density probe, same verdict rule as BuildSpatialIndexAuto: keep the
  // grid when enough of its cells are occupied. When the k-d backend is
  // active the probe builds a scratch grid from the live set (O(n), but
  // only ever on drift).
  if (grid_active_) {
    if (grid_->OccupiedCellFraction() >= kGridOccupancyThreshold) {
      // Verdict is "grid", but the population may have grown or shrunk
      // well past the size this grid's cells were laid out for (bulk
      // loads start tiny); a 4x-off geometry turns O(points-per-cell)
      // updates into long scans. Re-lay the grid at the current size.
      if (grid_->GeometryStale()) {
        std::vector<std::pair<int, Point>> live;
        grid_->CollectLive(&live);
        auto fresh =
            std::make_unique<DynamicGridIndex>(bounds_, grid_->size());
        for (const auto& [id, p] : live) fresh->Insert(id, p);
        grid_ = std::move(fresh);
        backend_ = grid_.get();
      }
      return;
    }
    std::vector<std::pair<int, Point>> live;
    grid_->CollectLive(&live);
    kd_ = std::make_unique<BufferedKdTreeIndex>(std::move(live));
    grid_.reset();
    grid_active_ = false;
    backend_ = kd_.get();
  } else {
    auto probe = std::make_unique<DynamicGridIndex>(bounds_, kd_->size());
    std::vector<std::pair<int, Point>> live;
    kd_->CollectLive(&live);
    for (const auto& [id, p] : live) probe->Insert(id, p);
    if (probe->OccupiedCellFraction() < kGridOccupancyThreshold) return;
    grid_ = std::move(probe);
    kd_.reset();
    grid_active_ = true;
    backend_ = grid_.get();
  }
}

}  // namespace psens
