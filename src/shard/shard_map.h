#ifndef PSENS_SHARD_SHARD_MAP_H_
#define PSENS_SHARD_SHARD_MAP_H_

#include <algorithm>

#include "common/geometry.h"
#include "index/grid_geometry.h"

namespace psens {

/// Geo-partitioning of the sensor universe across N shards, built on the
/// same GridGeometry binning the spatial indexes use: the working region
/// is laid out as a uniform cell grid and cells are dealt round-robin to
/// shards (cell % shards). Round-robin interleaving — rather than
/// contiguous stripes — keeps clustered populations balanced: a hot
/// downtown cluster spans many cells, and its cells land on every shard.
///
/// ShardOf is a pure function of (geometry, position): deterministic,
/// registry-independent, and total — positions outside the working
/// region clamp into edge cells exactly like the grid indexes clamp
/// outliers, so every sensor always has exactly one owning shard.
struct ShardMap {
  GridGeometry geo;
  int shards = 1;

  /// Lays the cell grid over `working_region` for an expected population
  /// of `expected_population` sensors (the auto cell sizing targets ~2
  /// sensors per cell, so the cell count comfortably exceeds any sane
  /// shard count).
  static ShardMap Layout(const Rect& working_region, int shards,
                         size_t expected_population) {
    ShardMap map;
    map.shards = std::max(1, shards);
    map.geo = GridGeometry::Layout(working_region, expected_population,
                                   /*cell_size=*/0.0);
    return map;
  }

  int ShardOf(const Point& p) const {
    return shards <= 1 ? 0 : geo.CellOf(p) % shards;
  }
};

/// One shard's view of the partition: the map plus this shard's id. A
/// default-constructed slice owns everything (the unsharded engine).
struct ShardSlice {
  ShardMap map;
  int shard_id = 0;

  bool sharded() const { return map.shards > 1; }
  bool Owns(const Point& p) const {
    return !sharded() || map.ShardOf(p) == shard_id;
  }
};

}  // namespace psens

#endif  // PSENS_SHARD_SHARD_MAP_H_
