#ifndef PSENS_SHARD_SHARD_ROUTER_H_
#define PSENS_SHARD_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "core/sensor.h"
#include "core/slot.h"
#include "engine/acquisition_engine.h"
#include "engine/serving_config.h"
#include "engine/serving_engine.h"
#include "shard/shard_map.h"

namespace psens {

class MonitorSet;

/// Sharded serving front end: one ServingEngine built from N
/// geo-partitioned AcquisitionEngine shards (ShardMap, cell % N). The
/// serving layer cannot tell it from a single engine — MakeServingEngine
/// picks the implementation from ServingConfig::shards, so sharding is a
/// config choice, not a new call site.
///
/// Division of labor per slot:
///   * The router is the single writer of the shared registry: it applies
///     each delta event-by-event in recorded order and notifies the
///     shard(s) owning the sensor's pre-/post-mutation position
///     (AcquisitionEngine::NoteChange). Event chains (move + re-move,
///     depart + re-arrive) route correctly because each notification uses
///     the live positions at mutation time.
///   * BeginSlot fans per-shard slot turnover (membership repair, cost
///     refresh, dynamic-index maintenance — the O(churn) work) out across
///     the thread pool, then reconciles the shards' repair journals into
///     one merged global slot context in a deterministic ascending-id
///     merge (engine/membership_merge.h — the same merge the single
///     engine runs, so the two paths cannot drift).
///   * Selection then runs ONCE over the merged global context
///     (ServingEngine::Select), exactly as the single engine's would.
///     Per-shard selection with post-hoc budget stitching cannot
///     reproduce the global greedy order (a query's best sensor may sit
///     in any shard, and the stochastic samplers draw from one global
///     stream), so the router parallelizes the turnover and keeps
///     selection global — which is what makes every outcome bit-identical
///     to the unsharded engine for any shard count, the property the
///     shard-invariance suite and bench/fig15_shard_sweep's fatal
///     equality gate enforce.
///
/// The merged context's spatial index is a fan-out view over the shards'
/// dynamic indexes: each shard's index answers exactly for its slice and
/// ownership partitions space, so the union of per-shard exact results is
/// the global exact result set (re-sorted ascending to keep the
/// SpatialIndex contract).
///
/// Trace recording happens at the router (pre-split) level with the same
/// header a single engine writes, so a trace recorded sharded replays
/// under any shard count and vice versa.
class ShardRouter : public ServingEngine {
 public:
  /// Builds config.shards shard engines over the registry. Requires
  /// config.shards >= 2 and config.incremental (see
  /// ServingConfig::Validate; MakeServingEngine routes shards == 1 to a
  /// plain AcquisitionEngine).
  ShardRouter(std::vector<Sensor> sensors, const ServingConfig& config);
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;
  ShardRouter(ShardRouter&&) = delete;
  ShardRouter& operator=(ShardRouter&&) = delete;

  void ApplyTrace(const Trace& trace, int slot) override;
  void ApplyDelta(const SensorDelta& delta) override;
  const SlotContext& BeginSlot(int time) override;

  /// Pipelined slot lifecycle (see ServingEngine). With
  /// ServingConfig::pipeline == 2 the router drives the overlap from its
  /// own work-stealing task graph: StageNextSlot launches one
  /// delta-application task, then every shard's EarlyRepairStaged as
  /// concurrent dependents, then a reconcile task that folds the staged
  /// shard journals into the merged *back* context — all overlapping the
  /// caller's in-flight selection over the *front* context.
  /// ActivateStagedSlot joins the graph, applies deferred readings
  /// feedback, stamps the slot, and flips the router and every shard in
  /// lockstep. With pipeline < 2 both degrade to the sequential path.
  void StageNextSlot(int time, const SensorDelta& delta) override;
  const SlotContext& ActivateStagedSlot() override;

  void RecordReadings(const std::vector<int>& sensor_ids, int time) override;
  void RecordSlotReadings(const std::vector<int>& slot_indices,
                          int time) override;

  const std::vector<Sensor>& sensors() const override { return *registry_; }
  const ServingConfig& config() const override { return config_; }
  /// "sharded" when the merged context carries the fan-out index view,
  /// "none" when unindexed (policy kNone or below the auto threshold).
  const char* IndexBackendName() const override;
  int shard_count() const override { return map_.shards; }
  const ShardMap* shard_map_ptr() const override { return &map_; }

  void PinNextSlotSeed(uint64_t slot_seed) override;
  TraceWriter* trace_writer() override { return trace_.get(); }
  bool FinishTrace() override;

  const ShardMap& shard_map() const { return map_; }
  const AcquisitionEngine& shard(int s) const { return *shards_[s]; }

  /// Attaches a per-shard monitor set (non-owning; null detaches). After
  /// every BeginSlot the router reports shard `s`'s own turnover latency
  /// to set `s` via NotifyTurnover and NotifySlotEnd — a shard's "slot"
  /// is its turnover; binding, selection, and commit are global and
  /// observed by the serving loop's global monitor set instead. Dispatch
  /// is serial after the fan-out join (monitors are not thread-safe).
  void set_shard_monitors(int s, MonitorSet* monitors) {
    shard_monitors_[static_cast<size_t>(s)] = monitors;
  }

 private:
  /// Fan-out SpatialIndex over the shards' dynamic indexes, translating
  /// sensor ids to merged-context slot positions.
  class ShardedIndexView;

  /// One copy of the merged global slot state. Sequential serving uses
  /// buf_[0] only; pipelined serving double-buffers so the staged
  /// reconcile of slot t+1 writes the back buffer while slot t's
  /// selection reads the front one. Each buffer's fan-out view is pinned
  /// to that buffer's slot_pos map.
  struct RouterBuffer {
    /// Merged global slot context selection runs against.
    SlotContext ctx;
    /// id -> position in ctx.sensors, or -1 (global membership).
    std::vector<int> slot_pos;
    std::shared_ptr<ShardedIndexView> view;
  };

  /// Routes one registry mutation: notifies the shard owning the
  /// pre-mutation position and, if different, the post-mutation owner.
  void NotifyOwners(int id, const Point& pre, const Point& post,
                    bool cost_dirty);
  /// Single-writer registry mutation + owner notification (the delta
  /// application minus trace staging; shared by the sequential
  /// ApplyDelta and the staged graph's delta task).
  void ApplyDeltaToRegistry(const SensorDelta& delta);
  /// Folds the shards' repair journals into the merged global context:
  /// payload patches for continuing members first (positions are
  /// pre-merge), cross-shard migrations netted into patches, then one
  /// ascending-id membership merge.
  void Reconcile();
  /// Staged counterpart: folds the shards' *staged* journals and back
  /// entries into the router's back buffer with a cross-buffer merge
  /// (always runs — the back buffer is two slots stale), patching
  /// continuing members at post-merge positions.
  void StagedReconcile();
  void AttachIndex(RouterBuffer& b);

  ServingConfig config_;
  ShardMap map_;
  /// Shared sensor registry; the router is its single writer.
  std::shared_ptr<std::vector<Sensor>> registry_;
  std::vector<std::unique_ptr<AcquisitionEngine>> shards_;
  /// Double-buffered merged slot state; front_ indexes the active buffer
  /// (always 0 in sequential mode).
  RouterBuffer buf_[2];
  int front_ = 0;
  std::vector<SlotSensor> merge_scratch_;
  /// Slab-column merge target for the merged context (lockstep with
  /// merge_scratch_; engine/membership_merge.h).
  SlotSlabs slab_scratch_;
  /// Slot-lifetime scratch arena for the merged context's selection run;
  /// reset at every BeginSlot (or, pipelined, at each ActivateStagedSlot
  /// — by which point the previous selection's scratch is dead). One
  /// arena serves both buffers.
  SlotArena arena_;
  /// Fans per-shard turnover out, then serves intra-slot selection
  /// through SlotContext::pool (phases are sequential, never nested).
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<TraceWriter> trace_;
  uint64_t pinned_slot_seed_ = 0;
  bool has_pinned_slot_seed_ = false;
  std::vector<MonitorSet*> shard_monitors_;
  std::vector<double> shard_turnover_ms_;
  // Reconcile/readings scratch (persisted capacity).
  std::vector<std::pair<int, int>> journal_ins_;  // (id, shard)
  std::vector<std::pair<int, int>> journal_rem_;
  std::vector<std::pair<int, int>> journal_patch_;  // staged reconcile only
  std::vector<int> net_inserts_;
  std::vector<int> net_insert_shard_;
  std::vector<int> net_removes_;
  std::vector<std::vector<int>> reading_batches_;
  std::vector<int> reading_ids_;

  // --- Pipelined serving state (ServingConfig::pipeline == 2) ------------
  /// Double buffers allocated; Stage/Activate run the overlapped path.
  bool pipelined_ = false;
  /// Work-stealing executor the staged graph (delta task -> per-shard
  /// repairs -> reconcile) runs on.
  std::unique_ptr<TaskGraphExecutor> graph_;
  int staged_time_ = 0;
  /// Router-owned copy of the staged slot's delta (the caller's delta
  /// may die before the graph's delta task consumes it).
  SensorDelta staged_delta_;
  /// Deferred readings feedback: (sensor id, reading slot) pairs queued
  /// while a staging is in flight, applied at ActivateStagedSlot.
  std::vector<std::pair<int, int>> pending_readings_;
  /// Per-shard late-feedback batches (persisted capacity).
  std::vector<std::vector<std::pair<int, int>>> reading_pair_batches_;
};

}  // namespace psens

#endif  // PSENS_SHARD_SHARD_ROUTER_H_
