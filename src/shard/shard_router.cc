#include "shard/shard_router.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "core/stochastic_greedy.h"
#include "engine/membership_merge.h"
#include "index/spatial_index.h"
#include "trace/monitor.h"
#include "trace/trace_writer.h"

namespace psens {
namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(const SteadyClock::time_point& start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
      .count();
}

}  // namespace

/// Fan-out view over the shards' id-keyed dynamic indexes. Ownership
/// partitions space and every shard index is exact for its slice, so the
/// union of per-shard results is the global exact result set; translated
/// slot positions are re-sorted ascending to keep the SpatialIndex
/// contract (per-shard lists are ascending, but interleaved across
/// shards). Query scratch is mutable per the BufferedKdTreeIndex
/// precedent: probes run only on the serving thread.
class ShardRouter::ShardedIndexView : public SpatialIndex {
 public:
  /// Pinned to one router buffer: translations go through that buffer's
  /// slot_pos map, so a context handed out at a pipelined flip keeps
  /// resolving through the right membership. raw_dynamic_index() is each
  /// shard's *front* index — immutable between flips (staged repair
  /// mutates only back indexes), and shard flips are synchronized with
  /// the router's, so the view stays consistent while a selection holds
  /// it.
  ShardedIndexView(const ShardRouter* router, const RouterBuffer* buffer)
      : router_(router), buffer_(buffer) {}

  int size() const override {
    int total = 0;
    for (const auto& shard : router_->shards_) {
      total += shard->raw_dynamic_index()->size();
    }
    return total;
  }

  void RangeQuery(const Point& center, double radius,
                  std::vector<int>* out) const override {
    out->clear();
    for (const auto& shard : router_->shards_) {
      shard->raw_dynamic_index()->RangeQuery(center, radius, &scratch_);
      for (int id : scratch_) out->push_back(buffer_->slot_pos[id]);
    }
    std::sort(out->begin(), out->end());
  }

  void RectQuery(const Rect& rect, std::vector<int>* out) const override {
    out->clear();
    for (const auto& shard : router_->shards_) {
      shard->raw_dynamic_index()->RectQuery(rect, &scratch_);
      for (int id : scratch_) out->push_back(buffer_->slot_pos[id]);
    }
    std::sort(out->begin(), out->end());
  }

  int Nearest(const Point& p) const override {
    // Per-shard winners tie-break by lowest id within the shard; across
    // shards, (distance, id) lexicographic min reproduces the global
    // index's lowest-id-on-tie rule. The distance reads the buffer's
    // slot entry, not the registry: the registry may already hold the
    // *staged* slot's position (or be mid-mutation on a graph worker),
    // while the slot entry is exactly the location this buffer's index
    // answered with.
    int best_id = -1;
    double best_d = std::numeric_limits<double>::infinity();
    for (const auto& shard : router_->shards_) {
      const int id = shard->raw_dynamic_index()->Nearest(p);
      if (id < 0) continue;
      const int pos = buffer_->slot_pos[id];
      const double d =
          Distance(p, buffer_->ctx.sensors[static_cast<size_t>(pos)].location);
      if (d < best_d || (d == best_d && id < best_id)) {
        best_d = d;
        best_id = id;
      }
    }
    return best_id < 0 ? -1 : buffer_->slot_pos[best_id];
  }

  const char* Name() const override { return "sharded"; }

 private:
  const ShardRouter* router_;
  const RouterBuffer* buffer_;
  mutable std::vector<int> scratch_;
};

ShardRouter::ShardRouter(std::vector<Sensor> sensors,
                         const ServingConfig& config)
    : config_(config) {
  assert(config_.shards >= 2 && "use AcquisitionEngine for shards <= 1");
  assert(config_.incremental && "sharded serving requires incremental mode");
  const int n = static_cast<int>(sensors.size());
  for (int i = 0; i < n; ++i) {
    assert(sensors[i].id() == i && "registry must be id-dense");
    (void)i;
  }
  map_ = ShardMap::Layout(config_.working_region, config_.shards,
                          static_cast<size_t>(n));
  registry_ = std::make_shared<std::vector<Sensor>>(std::move(sensors));
  pipelined_ = config_.pipeline == 2;
  const int nbuf = pipelined_ ? 2 : 1;
  for (int k = 0; k < nbuf; ++k) {
    buf_[k].ctx.dmax = config_.dmax;
    buf_[k].ctx.index_policy = config_.index_policy;
    buf_[k].ctx.index_auto_threshold = config_.index_auto_threshold;
    buf_[k].slot_pos.assign(static_cast<size_t>(n), -1);
  }
  if (config_.threads != 1) {
    pool_ = std::make_unique<ThreadPool>(config_.threads);
  }
  if (!config_.trace_path.empty()) {
    // Same header a single engine writes: the trace carries no shard
    // count, so it replays under any.
    TraceHeader header;
    // Adaptive runs record their per-slot engine choices, which needs the
    // version-2 record layout; plain runs keep writing version-1 bytes.
    header.version =
        config_.slo_ms > 0.0 ? kTraceVersionAdaptive : kTraceVersion;
    header.registry_count = static_cast<uint32_t>(n);
    header.registry_checksum = RegistryChecksum(*registry_);
    header.dmax = config_.dmax;
    header.working_region = config_.working_region;
    header.approx_seed = config_.approx.seed;
    header.epsilon = config_.approx.epsilon;
    header.min_sample = config_.approx.min_sample;
    header.sample_hint = config_.approx.sample_hint;
    trace_ = TraceWriter::Open(config_.trace_path, header);
  }
  // Shard engines: same serving knobs (including the pipeline depth, so
  // pipelined shards allocate their double buffers), but no recording
  // (the router records pre-split), no nested pools, and a slice of the
  // shard map. Sharded slices never start their own executor — the
  // router's graph drives their staged repair.
  ServingConfig shard_cfg = config_;
  shard_cfg.trace_path.clear();
  shard_cfg.threads = 1;
  shard_cfg.shards = 1;
  shards_.reserve(static_cast<size_t>(map_.shards));
  for (int s = 0; s < map_.shards; ++s) {
    shards_.push_back(std::make_unique<AcquisitionEngine>(
        registry_, shard_cfg, ShardSlice{map_, s}));
  }
  shard_monitors_.assign(static_cast<size_t>(map_.shards), nullptr);
  shard_turnover_ms_.assign(static_cast<size_t>(map_.shards), 0.0);
  reading_batches_.resize(static_cast<size_t>(map_.shards));
  if (pipelined_) {
    reading_pair_batches_.resize(static_cast<size_t>(map_.shards));
    // Enough workers for the per-shard repair fan-out plus the reconcile
    // tail, bounded by the configured/hardware parallelism; threads == 1
    // still gets one worker (the overlap with the serving thread's
    // selection is the point, not intra-graph parallelism).
    const int workers =
        config_.threads == 1
            ? 1
            : std::min(map_.shards + 1,
                       ThreadPool::ResolveParallelism(config_.threads));
    graph_ = std::make_unique<TaskGraphExecutor>(workers);
  }
}

ShardRouter::~ShardRouter() = default;

void ShardRouter::PinNextSlotSeed(uint64_t slot_seed) {
  pinned_slot_seed_ = slot_seed;
  has_pinned_slot_seed_ = true;
}

bool ShardRouter::FinishTrace() {
  return trace_ != nullptr && trace_->Finish();
}

void ShardRouter::NotifyOwners(int id, const Point& pre, const Point& post,
                               bool cost_dirty) {
  const int a = map_.ShardOf(pre);
  shards_[static_cast<size_t>(a)]->NoteChange(id, cost_dirty);
  const int b = map_.ShardOf(post);
  if (b != a) shards_[static_cast<size_t>(b)]->NoteChange(id, cost_dirty);
}

void ShardRouter::ApplyTrace(const Trace& trace, int slot) {
  std::vector<Sensor>& sensors = *registry_;
  const int n = static_cast<int>(sensors.size());
  const int tn = trace.NumSensors();
  // Mirrors AcquisitionEngine::ApplyTrace, including journaling the
  // mobility slot as its equivalent SensorDelta when recording.
  SensorDelta recorded;
  for (int id = 0; id < n; ++id) {
    Sensor& s = sensors[id];
    const Point p = id < tn ? trace.Position(slot, id) : Point{0, 0};
    const bool present = id < tn && trace.Present(slot, id);
    if (s.present() == present && s.position() == p) continue;
    if (trace_ != nullptr) {
      if (!present) {
        recorded.departures.push_back(id);
      } else if (!s.present()) {
        recorded.arrivals.push_back(SensorDelta::Placement{id, p});
      } else {
        recorded.moves.push_back(SensorDelta::Placement{id, p});
      }
    }
    const Point pre = s.position();
    s.SetPosition(p, present);
    NotifyOwners(id, pre, p, /*cost_dirty=*/false);
  }
  if (trace_ != nullptr && !recorded.empty()) trace_->StageDelta(recorded);
}

void ShardRouter::ApplyDelta(const SensorDelta& delta) {
  if (trace_ != nullptr) trace_->StageDelta(delta);
  ApplyDeltaToRegistry(delta);
}

void ShardRouter::ApplyDeltaToRegistry(const SensorDelta& delta) {
  // Single-writer mutation in the exact field order the single engine
  // uses (arrivals, departures, moves, price changes); each mutation
  // notifies the owner(s) using the live pre-/post-mutation positions,
  // which keeps event chains for one sensor routed correctly.
  std::vector<Sensor>& sensors = *registry_;
  for (const SensorDelta::Placement& a : delta.arrivals) {
    Sensor& s = sensors[a.sensor_id];
    const Point pre = s.position();
    s.SetPosition(a.position, true);
    NotifyOwners(a.sensor_id, pre, a.position, /*cost_dirty=*/false);
  }
  for (int id : delta.departures) {
    Sensor& s = sensors[id];
    s.SetPosition(s.position(), false);
    NotifyOwners(id, s.position(), s.position(), /*cost_dirty=*/false);
  }
  for (const SensorDelta::Placement& m : delta.moves) {
    Sensor& s = sensors[m.sensor_id];
    const Point pre = s.position();
    s.SetPosition(m.position, true);
    NotifyOwners(m.sensor_id, pre, m.position, /*cost_dirty=*/false);
  }
  for (const SensorDelta::PriceChange& pc : delta.price_changes) {
    Sensor& s = sensors[pc.sensor_id];
    s.SetBasePrice(pc.base_price);
    NotifyOwners(pc.sensor_id, s.position(), s.position(),
                 /*cost_dirty=*/true);
  }
}

const SlotContext& ShardRouter::BeginSlot(int time) {
  RouterBuffer& b = buf_[front_];
  arena_.Reset();
  b.ctx.time = time;
  b.ctx.arena = &arena_;
  b.ctx.pool = pool_.get();
  b.ctx.approx = config_.approx;
  b.ctx.approx.slot_seed = ApproxSlotSeed(config_.approx, time);
  if (has_pinned_slot_seed_) {
    b.ctx.approx.slot_seed = pinned_slot_seed_;
    has_pinned_slot_seed_ = false;
  }
  if (trace_ != nullptr) trace_->BeginSlot(time, b.ctx.approx.slot_seed);
  // Fan the per-shard turnover out. Safe concurrently: each shard engine
  // writes only its own state and reads the shared registry through
  // const accessors (Sensor::Cost/PrivacyLoss cache nothing), and the
  // router mutates the registry only between slots.
  const int ns = map_.shards;
  const auto turnover = [&](int s) {
    const SteadyClock::time_point start = SteadyClock::now();
    shards_[static_cast<size_t>(s)]->BeginSlot(time);
    shard_turnover_ms_[static_cast<size_t>(s)] = MsSince(start);
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(ns, turnover);
  } else {
    for (int s = 0; s < ns; ++s) turnover(s);
  }
  for (int s = 0; s < ns; ++s) {
    MonitorSet* monitors = shard_monitors_[static_cast<size_t>(s)];
    if (monitors == nullptr) continue;
    const double ms = shard_turnover_ms_[static_cast<size_t>(s)];
    monitors->NotifyTurnover(time, ms);
    monitors->NotifySlotEnd(time, ms);
  }
  Reconcile();
  AttachIndex(b);
  return b.ctx;
}

void ShardRouter::Reconcile() {
  RouterBuffer& b = buf_[front_];
  // 1. Payload patches for continuing members. Journal `patched` entries
  // are continuing members of their shard, hence continuing global
  // members: their merged-context positions are valid before the merge.
  const auto patch_from = [&](int shard, int id) {
    const int pos = b.slot_pos[id];
    assert(pos >= 0 && "patched sensors are continuing global members");
    const SlotSensor* e = shards_[static_cast<size_t>(shard)]->MemberEntry(id);
    SlotSensor& g = b.ctx.sensors[static_cast<size_t>(pos)];
    g.location = e->location;
    g.cost = e->cost;
    g.inaccuracy = e->inaccuracy;
    g.trust = e->trust;
    // Keep the merged context's SoA columns in lockstep with the patch.
    b.ctx.slabs.SetRowFrom(static_cast<size_t>(pos), g,
                           (*registry_)[static_cast<size_t>(id)]);
  };
  journal_ins_.clear();
  journal_rem_.clear();
  for (int s = 0; s < map_.shards; ++s) {
    const AcquisitionEngine::SlotRepairs& r =
        shards_[static_cast<size_t>(s)]->last_repairs();
    for (int id : r.patched) patch_from(s, id);
    for (int id : r.inserted) journal_ins_.emplace_back(id, s);
    for (int id : r.removed) journal_rem_.emplace_back(id, s);
  }
  if (journal_ins_.empty() && journal_rem_.empty()) return;
  // 2. Net cross-shard migrations: an id inserted by one shard and
  // removed by another in the same slot stays a global member — it only
  // changed owner — so it becomes a payload patch from the inserting
  // shard instead of membership churn. Ownership is a function of
  // position, so each id appears at most once per list.
  std::sort(journal_ins_.begin(), journal_ins_.end());
  std::sort(journal_rem_.begin(), journal_rem_.end());
  net_inserts_.clear();
  net_insert_shard_.clear();
  net_removes_.clear();
  size_t ii = 0;
  size_t ri = 0;
  while (ii < journal_ins_.size() || ri < journal_rem_.size()) {
    if (ri >= journal_rem_.size() ||
        (ii < journal_ins_.size() &&
         journal_ins_[ii].first < journal_rem_[ri].first)) {
      net_inserts_.push_back(journal_ins_[ii].first);
      net_insert_shard_.push_back(journal_ins_[ii].second);
      ++ii;
    } else if (ii >= journal_ins_.size() ||
               journal_rem_[ri].first < journal_ins_[ii].first) {
      net_removes_.push_back(journal_rem_[ri].first);
      ++ri;
    } else {
      patch_from(journal_ins_[ii].second, journal_ins_[ii].first);
      ++ii;
      ++ri;
    }
  }
  if (net_inserts_.empty() && net_removes_.empty()) return;
  // 3. One ascending-id membership merge — the same implementation the
  // single engine's RebuildMembership runs. Fresh inserts copy their
  // payload from the owning shard's context entry; `fill` is invoked in
  // ascending id order, so a single cursor tracks the owner list.
  size_t cursor = 0;
  MergeSortedMembership(
      &b.ctx.sensors, &merge_scratch_, &b.slot_pos, net_inserts_,
      net_removes_,
      [&](SlotSensor& ss, int id) {
        while (net_inserts_[cursor] != id) ++cursor;
        const SlotSensor* e =
            shards_[static_cast<size_t>(net_insert_shard_[cursor])]
                ->MemberEntry(id);
        ss.location = e->location;
        ss.cost = e->cost;
        ss.inaccuracy = e->inaccuracy;
        ss.trust = e->trust;
      },
      &b.ctx.slabs, &slab_scratch_,
      [&](SlotSlabs& out, size_t row, const SlotSensor& ss, int id) {
        out.SetRowFrom(row, ss, (*registry_)[static_cast<size_t>(id)]);
      });
}

void ShardRouter::AttachIndex(RouterBuffer& b) {
  // Mirrors the single engine's attach condition over the *global*
  // member count, so the indexed/unindexed decision — and therefore the
  // query evaluation order — matches the unsharded run exactly.
  const int n = static_cast<int>(b.ctx.sensors.size());
  const bool want =
      config_.index_policy != SlotIndexPolicy::kNone && n > 0 &&
      !(config_.index_policy == SlotIndexPolicy::kAuto &&
        n < config_.index_auto_threshold);
  if (!want) {
    b.ctx.index.reset();
    return;
  }
  if (b.view == nullptr) {
    b.view = std::make_shared<ShardedIndexView>(this, &b);
  }
  b.ctx.index = b.view;
}

// --- Pipelined slot lifecycle ----------------------------------------------

void ShardRouter::StageNextSlot(int time, const SensorDelta& delta) {
  if (!pipelined_) {
    // Sequential degradation: exactly the ApplyDelta + (deferred)
    // BeginSlot path, so drivers can call Stage/Activate unconditionally.
    ApplyDelta(delta);
    staged_time_ = time;
    return;
  }
  // Trace staging stays on the serving thread, preserving the recorded
  // stream order (slot t's queries were staged before this call).
  if (trace_ != nullptr) trace_->StageDelta(delta);
  staged_time_ = time;
  staged_delta_ = delta;
  // Delta application first (single writer), then every shard's staged
  // repair concurrently, then one reconcile tail folding the staged
  // journals into the merged back context.
  const TaskGraphExecutor::TaskId d =
      graph_->AddTask([this] { ApplyDeltaToRegistry(staged_delta_); });
  std::vector<TaskGraphExecutor::TaskId> repairs;
  repairs.reserve(static_cast<size_t>(map_.shards));
  for (int s = 0; s < map_.shards; ++s) {
    repairs.push_back(graph_->AddTask(
        [this, s] {
          const SteadyClock::time_point start = SteadyClock::now();
          shards_[static_cast<size_t>(s)]->EarlyRepairStaged(staged_time_);
          shard_turnover_ms_[static_cast<size_t>(s)] = MsSince(start);
        },
        {d}));
  }
  graph_->AddTask([this] { StagedReconcile(); }, repairs);
  graph_->Launch();
}

void ShardRouter::StagedReconcile() {
  RouterBuffer& f = buf_[front_];
  RouterBuffer& b = buf_[front_ ^ 1];
  b.ctx.time = staged_time_;
  journal_ins_.clear();
  journal_rem_.clear();
  journal_patch_.clear();
  for (int s = 0; s < map_.shards; ++s) {
    const AcquisitionEngine::SlotRepairs& r =
        shards_[static_cast<size_t>(s)]->last_repairs();
    for (int id : r.patched) journal_patch_.emplace_back(id, s);
    for (int id : r.inserted) journal_ins_.emplace_back(id, s);
    for (int id : r.removed) journal_rem_.emplace_back(id, s);
  }
  // Net cross-shard migrations into patches (same rule as Reconcile).
  std::sort(journal_ins_.begin(), journal_ins_.end());
  std::sort(journal_rem_.begin(), journal_rem_.end());
  net_inserts_.clear();
  net_insert_shard_.clear();
  net_removes_.clear();
  size_t ii = 0;
  size_t ri = 0;
  while (ii < journal_ins_.size() || ri < journal_rem_.size()) {
    if (ri >= journal_rem_.size() ||
        (ii < journal_ins_.size() &&
         journal_ins_[ii].first < journal_rem_[ri].first)) {
      net_inserts_.push_back(journal_ins_[ii].first);
      net_insert_shard_.push_back(journal_ins_[ii].second);
      ++ii;
    } else if (ii >= journal_ins_.size() ||
               journal_rem_[ri].first < journal_ins_[ii].first) {
      net_removes_.push_back(journal_rem_[ri].first);
      ++ri;
    } else {
      journal_patch_.emplace_back(journal_ins_[ii].first,
                                  journal_ins_[ii].second);
      ++ii;
      ++ri;
    }
  }
  // Cross-buffer membership merge: always runs (zero events degenerate
  // to a straight copy) — the back buffer's member array and slot_pos
  // map are two slots stale, so unlike Reconcile there is no
  // nothing-changed early-out.
  size_t cursor = 0;
  MergeSortedMembershipInto(
      f.ctx.sensors, f.ctx.slabs, f.slot_pos, &b.ctx.sensors, &b.ctx.slabs,
      &b.slot_pos, net_inserts_, net_removes_,
      [&](SlotSensor& ss, int id) {
        while (net_inserts_[cursor] != id) ++cursor;
        const SlotSensor* e =
            shards_[static_cast<size_t>(net_insert_shard_[cursor])]
                ->StagedMemberEntry(id);
        ss.location = e->location;
        ss.cost = e->cost;
        ss.inaccuracy = e->inaccuracy;
        ss.trust = e->trust;
      },
      [&](SlotSlabs& out, size_t row, const SlotSensor& ss, int id) {
        out.SetRowFrom(row, ss, (*registry_)[static_cast<size_t>(id)]);
      });
  // Payload patches for continuing members, deferred to post-merge back
  // positions (patched ids are disjoint, so application order between
  // shard journals and netted migrations is immaterial).
  for (const std::pair<int, int>& p : journal_patch_) {
    const int pos = b.slot_pos[p.first];
    assert(pos >= 0 && "patched sensors are continuing global members");
    const SlotSensor* e =
        shards_[static_cast<size_t>(p.second)]->StagedMemberEntry(p.first);
    SlotSensor& g = b.ctx.sensors[static_cast<size_t>(pos)];
    g.location = e->location;
    g.cost = e->cost;
    g.inaccuracy = e->inaccuracy;
    g.trust = e->trust;
    b.ctx.slabs.SetRowFrom(static_cast<size_t>(pos), g,
                           (*registry_)[static_cast<size_t>(p.first)]);
  }
  AttachIndex(b);
}

const SlotContext& ShardRouter::ActivateStagedSlot() {
  if (!pipelined_) return BeginSlot(staged_time_);
  graph_->Join();  // commit barrier; rethrows staged-task errors
  // Serial monitor dispatch with the staged repair timings (monitors are
  // not thread-safe; the graph tasks only record durations).
  for (int s = 0; s < map_.shards; ++s) {
    MonitorSet* monitors = shard_monitors_[static_cast<size_t>(s)];
    if (monitors == nullptr) continue;
    const double ms = shard_turnover_ms_[static_cast<size_t>(s)];
    monitors->NotifyTurnover(staged_time_, ms);
    monitors->NotifySlotEnd(staged_time_, ms);
  }
  RouterBuffer& b = buf_[front_ ^ 1];
  if (!pending_readings_.empty()) {
    // Deferred readings feedback, grouped by the *current* (post-delta)
    // owner so the charging shard is the one whose staged membership
    // carries the sensor — per-sensor state is independent, so the
    // regrouping is order-safe and outcome-neutral.
    for (std::vector<std::pair<int, int>>& batch : reading_pair_batches_) {
      batch.clear();
    }
    const std::vector<Sensor>& sensors = *registry_;
    for (const std::pair<int, int>& r : pending_readings_) {
      const int owner =
          map_.ShardOf(sensors[static_cast<size_t>(r.first)].position());
      reading_pair_batches_[static_cast<size_t>(owner)].push_back(r);
    }
    for (int s = 0; s < map_.shards; ++s) {
      const std::vector<std::pair<int, int>>& batch =
          reading_pair_batches_[static_cast<size_t>(s)];
      if (!batch.empty()) {
        shards_[static_cast<size_t>(s)]->LateFeedbackStaged(batch,
                                                            staged_time_);
      }
    }
    // Mirror the shards' re-costed announcements into the merged back
    // rows (the reconcile ran before the feedback landed).
    for (const std::pair<int, int>& r : pending_readings_) {
      const int pos = b.slot_pos[r.first];
      if (pos < 0) continue;
      const Sensor& s = sensors[static_cast<size_t>(r.first)];
      SlotSensor& g = b.ctx.sensors[static_cast<size_t>(pos)];
      g.cost = s.Cost(staged_time_);
      b.ctx.slabs.cost[static_cast<size_t>(pos)] = g.cost;
      b.ctx.slabs.energy[static_cast<size_t>(pos)] = s.RemainingEnergy();
    }
    pending_readings_.clear();
  }
  arena_.Reset();
  b.ctx.time = staged_time_;
  b.ctx.arena = &arena_;
  b.ctx.pool = pool_.get();
  b.ctx.approx = config_.approx;
  b.ctx.approx.slot_seed = ApproxSlotSeed(config_.approx, staged_time_);
  if (has_pinned_slot_seed_) {
    b.ctx.approx.slot_seed = pinned_slot_seed_;
    has_pinned_slot_seed_ = false;
  }
  if (trace_ != nullptr) {
    trace_->BeginSlot(staged_time_, b.ctx.approx.slot_seed);
  }
  // Flip every shard in lockstep with the router's buffers.
  for (const std::unique_ptr<AcquisitionEngine>& shard : shards_) {
    shard->FlipStaged();
  }
  front_ ^= 1;
  return buf_[front_].ctx;
}

// ---------------------------------------------------------------------------

void ShardRouter::RecordReadings(const std::vector<int>& sensor_ids,
                                 int time) {
  if (pipelined_) {
    // A staging may be in flight: defer — ActivateStagedSlot applies the
    // queue at the commit barrier.
    for (int id : sensor_ids) pending_readings_.emplace_back(id, time);
    return;
  }
  // Group by owning shard (the member shard: positions are unchanged
  // since BeginSlot) and let each owner charge its own sensors, so
  // reading bookkeeping and privacy-decay enrollment land exactly where
  // the next turnover needs them. Per-sensor state is independent, so
  // regrouping the ids is order-safe.
  for (std::vector<int>& batch : reading_batches_) batch.clear();
  const std::vector<Sensor>& sensors = *registry_;
  for (int id : sensor_ids) {
    const int owner = map_.ShardOf(sensors[static_cast<size_t>(id)].position());
    reading_batches_[static_cast<size_t>(owner)].push_back(id);
  }
  for (int s = 0; s < map_.shards; ++s) {
    const std::vector<int>& batch = reading_batches_[static_cast<size_t>(s)];
    if (!batch.empty()) {
      shards_[static_cast<size_t>(s)]->RecordReadings(batch, time);
    }
  }
}

void ShardRouter::RecordSlotReadings(const std::vector<int>& slot_indices,
                                     int time) {
  const SlotContext& ctx = buf_[front_].ctx;
  if (pipelined_) {
    for (int si : slot_indices) {
      pending_readings_.emplace_back(
          ctx.sensors[static_cast<size_t>(si)].sensor_id, time);
    }
    return;
  }
  reading_ids_.clear();
  for (int si : slot_indices) {
    reading_ids_.push_back(ctx.sensors[static_cast<size_t>(si)].sensor_id);
  }
  RecordReadings(reading_ids_, time);
}

const char* ShardRouter::IndexBackendName() const {
  const SlotContext& ctx = buf_[front_].ctx;
  return ctx.index == nullptr ? "none" : ctx.index->Name();
}

std::unique_ptr<ServingEngine> MakeServingEngine(std::vector<Sensor> sensors,
                                                 const ServingConfig& config) {
  const std::string problem = config.Validate();
  if (!problem.empty()) {
    std::fprintf(stderr, "MakeServingEngine: invalid config: %s\n",
                 problem.c_str());
    std::abort();
  }
  if (config.shards <= 1) {
    return std::make_unique<AcquisitionEngine>(std::move(sensors), config);
  }
  return std::make_unique<ShardRouter>(std::move(sensors), config);
}

}  // namespace psens
