#include "mobility/random_waypoint.h"

#include <cmath>

#include "common/rng.h"

namespace psens {
namespace {

/// Reflects `x` into [0, size].
double Reflect(double x, double size) {
  while (x < 0.0 || x > size) {
    if (x < 0.0) x = -x;
    if (x > size) x = 2.0 * size - x;
  }
  return x;
}

}  // namespace

Rect CentralSubregion(double region_size, double working_size) {
  const double margin = (region_size - working_size) / 2.0;
  return Rect{margin, margin, margin + working_size, margin + working_size};
}

Trace GenerateRandomWaypoint(const RandomWaypointConfig& config) {
  Rng rng(config.seed);
  const double height =
      config.region_height > 0.0 ? config.region_height : config.region_size;
  Trace trace(config.num_slots, config.num_sensors);
  std::vector<Point> position(config.num_sensors);
  std::vector<double> max_speed(config.num_sensors);
  for (int s = 0; s < config.num_sensors; ++s) {
    position[s] = Point{rng.Uniform(0.0, config.region_size),
                        rng.Uniform(0.0, height)};
    // The paper sets each sensor's max speed randomly to 4 or 5; we pick an
    // integer uniformly in [min_max_speed, max_max_speed].
    max_speed[s] = static_cast<double>(
        rng.UniformInt(static_cast<int64_t>(config.min_max_speed),
                       static_cast<int64_t>(config.max_max_speed)));
  }
  for (int t = 0; t < config.num_slots; ++t) {
    for (int s = 0; s < config.num_sensors; ++s) {
      trace.Set(t, s, position[s]);
      // Move for the next slot: random axis direction, speed in [0, vmax].
      const double speed = rng.Uniform(0.0, max_speed[s]);
      const int direction = static_cast<int>(rng.UniformInt(0, 3));
      Point p = position[s];
      switch (direction) {
        case 0: p.y += speed; break;  // up
        case 1: p.y -= speed; break;  // down
        case 2: p.x -= speed; break;  // left
        default: p.x += speed; break; // right
      }
      p.x = Reflect(p.x, config.region_size);
      p.y = Reflect(p.y, height);
      position[s] = p;
    }
  }
  return trace;
}

}  // namespace psens
