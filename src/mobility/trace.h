#ifndef PSENS_MOBILITY_TRACE_H_
#define PSENS_MOBILITY_TRACE_H_

#include <string>
#include <vector>

#include "common/geometry.h"

namespace psens {

/// A mobility trace: per time slot, the position (and presence) of every
/// sensor. All mobility models in the library materialize a `Trace`; the
/// aggregator consumes one slot at a time, which matches the paper's model
/// where sensors announce their location at the beginning of each slot.
class Trace {
 public:
  Trace() = default;
  Trace(int num_slots, int num_sensors);

  int NumSlots() const { return num_slots_; }
  int NumSensors() const { return num_sensors_; }

  void Set(int slot, int sensor, const Point& p, bool present = true);

  const Point& Position(int slot, int sensor) const;
  bool Present(int slot, int sensor) const;

  /// Indices of sensors present inside `region` at `slot`.
  std::vector<int> SensorsIn(int slot, const Rect& region) const;

  /// Number of sensors present inside `region` at `slot`.
  int CountIn(int slot, const Rect& region) const;

  /// Loads a trace from a CSV file with rows `sensor,slot,x,y`; sensors and
  /// slots are renumbered densely. Returns an empty trace on failure. This
  /// is the hook for plugging in real mobility datasets (e.g. the Nokia
  /// campaign trace the paper used).
  static Trace FromCsv(const std::string& path, bool* ok = nullptr);

  /// Writes the trace in the same CSV format (absent entries are skipped).
  bool ToCsv(const std::string& path) const;

 private:
  int Index(int slot, int sensor) const { return slot * num_sensors_ + sensor; }

  int num_slots_ = 0;
  int num_sensors_ = 0;
  std::vector<Point> positions_;
  std::vector<char> present_;
};

}  // namespace psens

#endif  // PSENS_MOBILITY_TRACE_H_
