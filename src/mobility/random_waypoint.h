#ifndef PSENS_MOBILITY_RANDOM_WAYPOINT_H_
#define PSENS_MOBILITY_RANDOM_WAYPOINT_H_

#include <cstdint>

#include "common/geometry.h"
#include "mobility/trace.h"

namespace psens {

/// Parameters for the paper's RWM dataset (Section 4.2): sensors move with
/// a random speed in [0, max speed] in a random axis-aligned direction
/// (up/down/left/right), limited to an 80x80 region; the aggregator's
/// working region is the central 50x50 subregion; upon initialization each
/// sensor's max speed is set randomly to 4 or 5 and sensors are spread
/// uniformly at random.
struct RandomWaypointConfig {
  int num_sensors = 200;
  int num_slots = 50;
  double region_size = 80.0;
  /// Optional height for rectangular regions; 0 means square
  /// (region_size x region_size).
  double region_height = 0.0;
  /// Candidate per-sensor maximum speeds (one chosen uniformly per sensor).
  double min_max_speed = 4.0;
  double max_max_speed = 5.0;
  uint64_t seed = 42;
};

/// Generates an RWM trace. Movements that would leave the region are
/// reflected at the boundary so sensors keep roaming the whole region.
Trace GenerateRandomWaypoint(const RandomWaypointConfig& config);

/// The central working subregion ("hotspot") of size `working_size` inside
/// a square region of size `region_size`.
Rect CentralSubregion(double region_size, double working_size);

}  // namespace psens

#endif  // PSENS_MOBILITY_RANDOM_WAYPOINT_H_
