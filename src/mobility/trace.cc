#include "mobility/trace.h"

#include <cassert>
#include <cstdlib>
#include <map>

#include "common/csv.h"

namespace psens {

Trace::Trace(int num_slots, int num_sensors)
    : num_slots_(num_slots),
      num_sensors_(num_sensors),
      positions_(static_cast<size_t>(num_slots) * num_sensors),
      present_(static_cast<size_t>(num_slots) * num_sensors, 0) {}

void Trace::Set(int slot, int sensor, const Point& p, bool present) {
  assert(slot >= 0 && slot < num_slots_ && sensor >= 0 && sensor < num_sensors_);
  positions_[Index(slot, sensor)] = p;
  present_[Index(slot, sensor)] = present ? 1 : 0;
}

const Point& Trace::Position(int slot, int sensor) const {
  assert(slot >= 0 && slot < num_slots_ && sensor >= 0 && sensor < num_sensors_);
  return positions_[Index(slot, sensor)];
}

bool Trace::Present(int slot, int sensor) const {
  assert(slot >= 0 && slot < num_slots_ && sensor >= 0 && sensor < num_sensors_);
  return present_[Index(slot, sensor)] != 0;
}

std::vector<int> Trace::SensorsIn(int slot, const Rect& region) const {
  std::vector<int> out;
  for (int s = 0; s < num_sensors_; ++s) {
    if (Present(slot, s) && region.Contains(Position(slot, s))) out.push_back(s);
  }
  return out;
}

int Trace::CountIn(int slot, const Rect& region) const {
  return static_cast<int>(SensorsIn(slot, region).size());
}

Trace Trace::FromCsv(const std::string& path, bool* ok) {
  bool read_ok = false;
  const auto rows = ReadCsv(path, &read_ok);
  if (!read_ok) {
    if (ok != nullptr) *ok = false;
    return Trace();
  }
  struct Entry {
    int slot;
    Point p;
  };
  std::map<int, std::vector<Entry>> by_sensor;
  int max_slot = -1;
  for (const auto& row : rows) {
    if (row.size() < 4) continue;
    char* end = nullptr;
    const int sensor = static_cast<int>(std::strtol(row[0].c_str(), &end, 10));
    const int slot = static_cast<int>(std::strtol(row[1].c_str(), &end, 10));
    const double x = std::strtod(row[2].c_str(), &end);
    const double y = std::strtod(row[3].c_str(), &end);
    if (slot < 0) continue;
    by_sensor[sensor].push_back(Entry{slot, Point{x, y}});
    if (slot > max_slot) max_slot = slot;
  }
  Trace trace(max_slot + 1, static_cast<int>(by_sensor.size()));
  int dense_id = 0;
  for (const auto& [sensor, entries] : by_sensor) {
    (void)sensor;
    for (const Entry& e : entries) trace.Set(e.slot, dense_id, e.p);
    ++dense_id;
  }
  if (ok != nullptr) *ok = true;
  return trace;
}

bool Trace::ToCsv(const std::string& path) const {
  CsvWriter writer(path);
  if (!writer.Ok()) return false;
  for (int s = 0; s < num_sensors_; ++s) {
    for (int t = 0; t < num_slots_; ++t) {
      if (!Present(t, s)) continue;
      const Point& p = Position(t, s);
      writer.WriteRow(std::vector<double>{static_cast<double>(s),
                                          static_cast<double>(t), p.x, p.y});
    }
  }
  return true;
}

}  // namespace psens
