#ifndef PSENS_MOBILITY_SYNTHETIC_NOKIA_H_
#define PSENS_MOBILITY_SYNTHETIC_NOKIA_H_

#include <cstdint>

#include "common/geometry.h"
#include "mobility/trace.h"

namespace psens {

/// Synthetic substitute for the RNC dataset (Nokia data-collection campaign
/// in Lausanne; see DESIGN.md "Substitutions"). The paper gridded the real
/// region into 100 m cells, kept a 237x300 subregion with a 100x100 working
/// subregion, shifted movement times, and added dummy users, ending with
/// 635 sensors in total and ~120 sensors inside the working subregion per
/// slot.
///
/// The generator reproduces those aggregate properties: each sensor is a
/// "commuter" that becomes active at a random offset, walks between anchor
/// points drawn from a popularity distribution biased toward the hotspot,
/// pauses with heavy-tailed durations, and leaves. Dummy users replay a
/// base user's relative movements from a shifted start (exactly the paper's
/// augmentation).
struct SyntheticNokiaConfig {
  int num_base_users = 180;
  int num_total_sensors = 635;
  int num_slots = 50;
  double region_width = 237.0;
  double region_height = 300.0;
  double working_size = 100.0;
  /// Probability that a trip anchor is drawn inside the working subregion
  /// (hotspot attraction); tuned so that ~120 of 635 sensors are inside the
  /// working subregion in an average slot.
  double hotspot_affinity = 0.25;
  /// Fraction of slots a sensor is active (present) on average.
  double activity_fraction = 0.4;
  /// Size of the shared pool of popular anchor locations (bus stops,
  /// cafeterias, ...): real campaign traces cluster heavily around a small
  /// set of places, which is what keeps coverage (and thus satisfaction)
  /// well below what a uniform spread of the same density would give.
  int num_anchor_points = 32;
  /// Jitter radius around a popular anchor when a user visits it.
  double anchor_jitter = 2.5;
  double mean_speed = 6.0;
  uint64_t seed = 7;
};

/// Generates the synthetic RNC-like trace.
Trace GenerateSyntheticNokia(const SyntheticNokiaConfig& config);

/// The working subregion used in the paper's RNC experiments, anchored at
/// the center of the region.
Rect NokiaWorkingRegion(const SyntheticNokiaConfig& config);

}  // namespace psens

#endif  // PSENS_MOBILITY_SYNTHETIC_NOKIA_H_
