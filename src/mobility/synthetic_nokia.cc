#include "mobility/synthetic_nokia.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace psens {
namespace {

struct Segment {
  int start_slot = 0;
  int end_slot = 0;  // exclusive
  Point from;
  Point to;
};

/// One user's itinerary: active window plus piecewise-linear movement.
struct Itinerary {
  int active_from = 0;
  int active_to = 0;  // exclusive
  std::vector<Segment> segments;

  bool PositionAt(int slot, Point* out) const {
    if (slot < active_from || slot >= active_to) return false;
    for (const Segment& seg : segments) {
      if (slot >= seg.start_slot && slot < seg.end_slot) {
        const double span = static_cast<double>(seg.end_slot - seg.start_slot);
        const double frac =
            span > 0.0 ? static_cast<double>(slot - seg.start_slot) / span : 0.0;
        out->x = seg.from.x + frac * (seg.to.x - seg.from.x);
        out->y = seg.from.y + frac * (seg.to.y - seg.from.y);
        return true;
      }
    }
    return false;
  }
};

/// The shared pool of popular places; a fraction sits inside the hotspot.
std::vector<Point> BuildAnchorPool(const SyntheticNokiaConfig& config,
                                   const Rect& hotspot, Rng& rng) {
  std::vector<Point> pool;
  pool.reserve(config.num_anchor_points);
  for (int i = 0; i < config.num_anchor_points; ++i) {
    if (rng.Bernoulli(config.hotspot_affinity)) {
      pool.push_back(Point{rng.Uniform(hotspot.x_min, hotspot.x_max),
                           rng.Uniform(hotspot.y_min, hotspot.y_max)});
    } else {
      pool.push_back(Point{rng.Uniform(0.0, config.region_width),
                           rng.Uniform(0.0, config.region_height)});
    }
  }
  return pool;
}

Point DrawAnchor(const SyntheticNokiaConfig& config,
                 const std::vector<Point>& pool, Rng& rng) {
  // Zipf-like popularity: low indices are visited far more often.
  const double u = rng.UniformDouble();
  const size_t index = static_cast<size_t>(
      u * u * static_cast<double>(pool.size() - 1) + 0.5);
  const Point& anchor = pool[std::min(index, pool.size() - 1)];
  Point p{anchor.x + rng.Uniform(-config.anchor_jitter, config.anchor_jitter),
          anchor.y + rng.Uniform(-config.anchor_jitter, config.anchor_jitter)};
  p.x = std::clamp(p.x, 0.0, config.region_width);
  p.y = std::clamp(p.y, 0.0, config.region_height);
  return p;
}

Itinerary BuildItinerary(const SyntheticNokiaConfig& config,
                         const std::vector<Point>& pool, Rng& rng) {
  Itinerary it;
  const int active_len = std::max(
      1, static_cast<int>(std::round(config.activity_fraction * config.num_slots *
                                     rng.Uniform(0.6, 1.4))));
  it.active_from = static_cast<int>(
      rng.UniformInt(0, std::max(0, config.num_slots - active_len)));
  it.active_to = std::min(config.num_slots, it.active_from + active_len);

  Point current = DrawAnchor(config, pool, rng);
  int slot = it.active_from;
  while (slot < it.active_to) {
    // Pause at the current anchor with a heavy-tailed duration.
    const int pause = 1 + static_cast<int>(rng.Exponential(0.7));
    const int pause_end = std::min(it.active_to, slot + pause);
    it.segments.push_back(Segment{slot, pause_end, current, current});
    slot = pause_end;
    if (slot >= it.active_to) break;
    // Trip to the next anchor; duration from distance and speed.
    const Point next = DrawAnchor(config, pool, rng);
    const double speed = std::max(1.0, rng.Normal(config.mean_speed, 2.0));
    const int travel =
        std::max(1, static_cast<int>(std::ceil(Distance(current, next) / speed)));
    const int travel_end = std::min(it.active_to, slot + travel);
    it.segments.push_back(Segment{slot, travel_end, current, next});
    slot = travel_end;
    current = next;
  }
  return it;
}

}  // namespace

Rect NokiaWorkingRegion(const SyntheticNokiaConfig& config) {
  const double cx = config.region_width / 2.0;
  const double cy = config.region_height / 2.0;
  const double half = config.working_size / 2.0;
  return Rect{cx - half, cy - half, cx + half, cy + half};
}

Trace GenerateSyntheticNokia(const SyntheticNokiaConfig& config) {
  Rng rng(config.seed);
  const Rect hotspot = NokiaWorkingRegion(config);
  const std::vector<Point> pool = BuildAnchorPool(config, hotspot, rng);
  Trace trace(config.num_slots, config.num_total_sensors);

  // Base users get fresh itineraries; dummy users replay a base user's
  // relative movements from a shifted start and start anchor (the paper's
  // augmentation of the sparse real data).
  std::vector<Itinerary> base;
  base.reserve(config.num_base_users);
  for (int u = 0; u < config.num_base_users; ++u) {
    base.push_back(BuildItinerary(config, pool, rng));
  }
  for (int s = 0; s < config.num_total_sensors; ++s) {
    Itinerary it;
    if (s < config.num_base_users) {
      it = base[s];
    } else {
      // Dummy user: pick a base itinerary, shift in time and translate.
      const Itinerary& origin =
          base[static_cast<size_t>(rng.UniformInt(0, config.num_base_users - 1))];
      it = origin;
      const int shift = static_cast<int>(rng.UniformInt(-config.num_slots / 2,
                                                        config.num_slots / 2));
      const double dx = rng.Uniform(-30.0, 30.0);
      const double dy = rng.Uniform(-30.0, 30.0);
      it.active_from = std::clamp(it.active_from + shift, 0, config.num_slots);
      it.active_to = std::clamp(it.active_to + shift, 0, config.num_slots);
      for (Segment& seg : it.segments) {
        seg.start_slot = std::clamp(seg.start_slot + shift, 0, config.num_slots);
        seg.end_slot = std::clamp(seg.end_slot + shift, 0, config.num_slots);
        seg.from.x = std::clamp(seg.from.x + dx, 0.0, config.region_width);
        seg.from.y = std::clamp(seg.from.y + dy, 0.0, config.region_height);
        seg.to.x = std::clamp(seg.to.x + dx, 0.0, config.region_width);
        seg.to.y = std::clamp(seg.to.y + dy, 0.0, config.region_height);
      }
    }
    for (int t = 0; t < config.num_slots; ++t) {
      Point p;
      if (it.PositionAt(t, &p)) trace.Set(t, s, p);
    }
  }
  return trace;
}

}  // namespace psens
