#include "regress/linear_model.h"

#include <cmath>

#include "la/cholesky.h"
#include "la/matrix.h"

namespace psens {

bool LinearModel::Fit(const std::vector<double>& times,
                      const std::vector<double>& values) {
  fitted_ = false;
  if (times.empty() || times.size() != values.size()) return false;
  const size_t p = static_cast<size_t>(degree_) + 1;
  Matrix x(times.size(), p);
  for (size_t i = 0; i < times.size(); ++i) {
    double feature = 1.0;
    for (size_t j = 0; j < p; ++j) {
      x(i, j) = feature;
      feature *= times[i];
    }
  }
  beta_ = SolveLeastSquares(x, values, 1e-8);
  fitted_ = !beta_.empty();
  return fitted_;
}

double LinearModel::Predict(double t) const {
  double result = 0.0;
  double feature = 1.0;
  for (double b : beta_) {
    result += b * feature;
    feature *= t;
  }
  return result;
}

std::vector<double> LinearModel::Residuals(const std::vector<double>& times,
                                           const std::vector<double>& values) const {
  std::vector<double> residuals(times.size(), 0.0);
  for (size_t i = 0; i < times.size(); ++i) {
    residuals[i] = values[i] - Predict(times[i]);
  }
  return residuals;
}

double LinearModel::SumSquaredResiduals(const std::vector<double>& times,
                                        const std::vector<double>& values) const {
  double sum = 0.0;
  for (size_t i = 0; i < times.size(); ++i) {
    const double r = values[i] - Predict(times[i]);
    sum += r * r;
  }
  return sum;
}

}  // namespace psens
