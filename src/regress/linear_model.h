#ifndef PSENS_REGRESS_LINEAR_MODEL_H_
#define PSENS_REGRESS_LINEAR_MODEL_H_

#include <vector>

namespace psens {

/// Ordinary-least-squares linear model y = beta^T phi(t) over a scalar
/// time axis. The feature map phi is polynomial: [1, t, t^2, ...] up to
/// `degree`. The paper (Section 4.5) uses "a linear regression model" to
/// model the historical ozone data; degree 1 reproduces that, higher
/// degrees are available for experimentation.
class LinearModel {
 public:
  explicit LinearModel(int degree = 1) : degree_(degree) {}

  /// Fits the model on (times, values). Returns false when the fit is
  /// degenerate (e.g. no data).
  bool Fit(const std::vector<double>& times, const std::vector<double>& values);

  /// Predicted value at time `t`. Requires a successful Fit.
  double Predict(double t) const;

  /// Residuals of the fitted model on (times, values): values[i] -
  /// Predict(times[i]).
  std::vector<double> Residuals(const std::vector<double>& times,
                                const std::vector<double>& values) const;

  /// Sum of squared residuals on the given data.
  double SumSquaredResiduals(const std::vector<double>& times,
                             const std::vector<double>& values) const;

  bool fitted() const { return fitted_; }
  const std::vector<double>& coefficients() const { return beta_; }

 private:
  int degree_;
  bool fitted_ = false;
  std::vector<double> beta_;
};

}  // namespace psens

#endif  // PSENS_REGRESS_LINEAR_MODEL_H_
