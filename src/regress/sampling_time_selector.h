#ifndef PSENS_REGRESS_SAMPLING_TIME_SELECTOR_H_
#define PSENS_REGRESS_SAMPLING_TIME_SELECTOR_H_

#include <vector>

namespace psens {

/// Helpers implementing the sampling-time machinery of Section 4.5: the
/// technique of [19] (OptiMoS) selects, from a historical series, the k
/// sampling times whose induced model best explains the whole history; the
/// valuation of a set of sampled times is the residual ratio G of Eq. (17).

/// Fits a degree-`degree` polynomial model on the subset of (times, values)
/// given by `indices` and returns the sum of squared residuals of that
/// model over the FULL series (sum_i r_i^2 | T of Eq. 17). Returns the
/// total sum of squares around zero if the subset is empty or the fit
/// fails (no model -> nothing explained).
double SubsetModelSsr(const std::vector<double>& times,
                      const std::vector<double>& values,
                      const std::vector<int>& indices, int degree = 1);

/// Greedy forward selection of `k` sampling times (indices into the
/// series) minimizing SubsetModelSsr. This reproduces the paper's use of
/// [19]: "selects the sampling times such that the residuals of the model
/// based on the values at the sampling times and the model given all the
/// historical data is minimized", with the number of sampling times fixed.
std::vector<int> SelectSamplingTimes(const std::vector<double>& times,
                                     const std::vector<double>& values, int k,
                                     int degree = 1);

/// The quality factor G(T') of Eq. (17):
///   G(T') = SSR(model fitted on desired T) / SSR(model fitted on sampled T').
/// Both SSRs are evaluated over the full historical series. Returns 0 when
/// no samples were taken. G(T') == 1 when T' == T; G can exceed 1 when the
/// opportunistically sampled times explain the history better than the
/// desired ones.
double ResidualRatio(const std::vector<double>& times,
                     const std::vector<double>& values,
                     const std::vector<int>& desired,
                     const std::vector<int>& sampled, int degree = 1);

}  // namespace psens

#endif  // PSENS_REGRESS_SAMPLING_TIME_SELECTOR_H_
