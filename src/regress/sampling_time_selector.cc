#include "regress/sampling_time_selector.h"

#include <algorithm>
#include <limits>

#include "regress/linear_model.h"

namespace psens {

double SubsetModelSsr(const std::vector<double>& times,
                      const std::vector<double>& values,
                      const std::vector<int>& indices, int degree) {
  double total_ss = 0.0;
  for (double v : values) total_ss += v * v;
  if (indices.empty()) return total_ss;
  std::vector<double> sub_times;
  std::vector<double> sub_values;
  sub_times.reserve(indices.size());
  sub_values.reserve(indices.size());
  for (int i : indices) {
    if (i < 0 || static_cast<size_t>(i) >= times.size()) continue;
    sub_times.push_back(times[i]);
    sub_values.push_back(values[i]);
  }
  if (sub_times.empty()) return total_ss;
  LinearModel model(degree);
  if (!model.Fit(sub_times, sub_values)) return total_ss;
  return model.SumSquaredResiduals(times, values);
}

std::vector<int> SelectSamplingTimes(const std::vector<double>& times,
                                     const std::vector<double>& values, int k,
                                     int degree) {
  std::vector<int> selected;
  if (times.empty() || k <= 0) return selected;
  const int n = static_cast<int>(times.size());
  k = std::min(k, n);
  std::vector<char> used(n, 0);
  for (int round = 0; round < k; ++round) {
    int best_index = -1;
    double best_ssr = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      if (used[i]) continue;
      selected.push_back(i);
      const double ssr = SubsetModelSsr(times, values, selected, degree);
      selected.pop_back();
      if (ssr < best_ssr) {
        best_ssr = ssr;
        best_index = i;
      }
    }
    if (best_index < 0) break;
    used[best_index] = 1;
    selected.push_back(best_index);
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

double ResidualRatio(const std::vector<double>& times,
                     const std::vector<double>& values,
                     const std::vector<int>& desired,
                     const std::vector<int>& sampled, int degree) {
  if (sampled.empty()) return 0.0;
  const double desired_ssr = SubsetModelSsr(times, values, desired, degree);
  const double sampled_ssr = SubsetModelSsr(times, values, sampled, degree);
  if (sampled_ssr <= 0.0) {
    // Perfect fit on the sampled times: cap the ratio (the paper's data
    // never yields an exactly zero SSR; this keeps the valuation finite).
    return desired_ssr <= 0.0 ? 1.0 : 1e6;
  }
  return desired_ssr / sampled_ssr;
}

}  // namespace psens
