#include "engine/acquisition_engine.h"

#include <algorithm>
#include <cassert>

#include "core/stochastic_greedy.h"
#include "engine/membership_merge.h"
#include "trace/trace_writer.h"

namespace psens {

/// Presents the engine's id-keyed dynamic index as the slot-indexed
/// SpatialIndex the schedulers consume. ctx_.sensors is sorted ascending
/// by sensor_id, so the id -> slot-index map is monotone and translated
/// result lists stay ascending — the tie-break/accumulation-order half of
/// the exactness contract survives the translation for free.
class AcquisitionEngine::SlotIndexView : public SpatialIndex {
 public:
  SlotIndexView(const SpatialIndex* base, const std::vector<int>* slot_pos)
      : base_(base), slot_pos_(slot_pos) {}

  int size() const override { return base_->size(); }
  void RangeQuery(const Point& center, double radius,
                  std::vector<int>* out) const override {
    base_->RangeQuery(center, radius, out);
    for (int& v : *out) v = (*slot_pos_)[v];
  }
  void RectQuery(const Rect& rect, std::vector<int>* out) const override {
    base_->RectQuery(rect, out);
    for (int& v : *out) v = (*slot_pos_)[v];
  }
  int Nearest(const Point& p) const override {
    const int id = base_->Nearest(p);
    return id < 0 ? -1 : (*slot_pos_)[id];
  }
  const char* Name() const override { return base_->Name(); }

 private:
  const SpatialIndex* base_;
  const std::vector<int>* slot_pos_;
};

AcquisitionEngine::AcquisitionEngine(std::vector<Sensor> sensors,
                                     const ServingConfig& config)
    : AcquisitionEngine(
          std::make_shared<std::vector<Sensor>>(std::move(sensors)), config,
          ShardSlice{}) {}

AcquisitionEngine::AcquisitionEngine(
    std::shared_ptr<std::vector<Sensor>> registry, const ServingConfig& config,
    const ShardSlice& slice)
    : config_(config),
      registry_(std::move(registry)),
      sensors_(*registry_),
      slice_(slice),
      journal_repairs_(slice.sharded()) {
  assert((!slice_.sharded() || config_.incremental) &&
         "shard engines require incremental mode");
  Init();
}

void AcquisitionEngine::Init() {
  const int n = static_cast<int>(sensors_.size());
  for (int i = 0; i < n; ++i) {
    assert(sensors_[i].id() == i && "registry must be id-dense");
    (void)i;
  }
  ctx_.dmax = config_.dmax;
  ctx_.index_policy = config_.index_policy;
  ctx_.index_auto_threshold = config_.index_auto_threshold;
  if (config_.threads != 1) {
    pool_ = std::make_unique<ThreadPool>(config_.threads);
  }
  if (!config_.trace_path.empty()) {
    TraceHeader header;
    header.registry_count = static_cast<uint32_t>(n);
    header.registry_checksum = RegistryChecksum(sensors_);
    header.dmax = config_.dmax;
    header.working_region = config_.working_region;
    header.approx_seed = config_.approx.seed;
    header.epsilon = config_.approx.epsilon;
    header.min_sample = config_.approx.min_sample;
    header.sample_hint = config_.approx.sample_hint;
    trace_ = TraceWriter::Open(config_.trace_path, header);
  }
  slot_pos_.assign(static_cast<size_t>(n), -1);
  if (!config_.incremental) return;
  changed_flag_.assign(static_cast<size_t>(n), 0);
  cost_dirty_.assign(static_cast<size_t>(n), 0);
  privacy_flag_.assign(static_cast<size_t>(n), 0);
  changed_.reserve(static_cast<size_t>(n));
  if (config_.index_policy != SlotIndexPolicy::kNone) {
    // A shard engine indexes only its slice, so size the backend for its
    // expected share of the population.
    const int expected =
        slice_.sharded() ? std::max(1, n / slice_.map.shards) : n;
    index_ = std::make_unique<DynamicSpatialIndex>(
        config_.working_region, config_.index_policy, expected);
  }
  for (int id = 0; id < n; ++id) {
    MarkChanged(id, /*cost_dirty=*/true);
    if (PrivacyLevelValue(sensors_[id].profile().privacy) > 0.0 &&
        !sensors_[id].report_history().empty()) {
      privacy_flag_[id] = 1;
      privacy_refresh_.push_back(id);
    }
  }
}

AcquisitionEngine::~AcquisitionEngine() = default;

void AcquisitionEngine::PinNextSlotSeed(uint64_t slot_seed) {
  pinned_slot_seed_ = slot_seed;
  has_pinned_slot_seed_ = true;
}

bool AcquisitionEngine::FinishTrace() {
  return trace_ != nullptr && trace_->Finish();
}

void AcquisitionEngine::MarkChanged(int id, bool cost_dirty) {
  if (!config_.incremental) return;
  if (cost_dirty) cost_dirty_[id] = 1;
  if (!changed_flag_[id]) {
    changed_flag_[id] = 1;
    changed_.push_back(id);
  }
}

void AcquisitionEngine::ApplyTrace(const Trace& trace, int slot) {
  const int n = static_cast<int>(sensors_.size());
  const int tn = trace.NumSensors();
  // When recording, the mobility slot is journaled as the SensorDelta it
  // is equivalent to, so one replay path serves both churn- and
  // trace-driven runs.
  SensorDelta recorded;
  for (int id = 0; id < n; ++id) {
    Sensor& s = sensors_[id];
    const Point p = id < tn ? trace.Position(slot, id) : Point{0, 0};
    const bool present = id < tn && trace.Present(slot, id);
    if (s.present() == present && s.position() == p) continue;
    if (trace_ != nullptr) {
      if (!present) {
        recorded.departures.push_back(id);
      } else if (!s.present()) {
        recorded.arrivals.push_back(SensorDelta::Placement{id, p});
      } else {
        recorded.moves.push_back(SensorDelta::Placement{id, p});
      }
    }
    s.SetPosition(p, present);
    MarkChanged(id, /*cost_dirty=*/false);
  }
  if (trace_ != nullptr && !recorded.empty()) trace_->StageDelta(recorded);
}

void AcquisitionEngine::ApplyDelta(const SensorDelta& delta) {
  if (trace_ != nullptr) trace_->StageDelta(delta);
  for (const SensorDelta::Placement& a : delta.arrivals) {
    sensors_[a.sensor_id].SetPosition(a.position, true);
    MarkChanged(a.sensor_id, /*cost_dirty=*/false);
  }
  for (int id : delta.departures) {
    sensors_[id].SetPosition(sensors_[id].position(), false);
    MarkChanged(id, /*cost_dirty=*/false);
  }
  for (const SensorDelta::Placement& m : delta.moves) {
    sensors_[m.sensor_id].SetPosition(m.position, true);
    MarkChanged(m.sensor_id, /*cost_dirty=*/false);
  }
  for (const SensorDelta::PriceChange& pc : delta.price_changes) {
    sensors_[pc.sensor_id].SetBasePrice(pc.base_price);
    MarkChanged(pc.sensor_id, /*cost_dirty=*/true);
  }
}

void AcquisitionEngine::RefreshMember(int id, int time) {
  const Sensor& s = sensors_[id];
  const bool member = s.available() &&
                      config_.working_region.Contains(s.position()) &&
                      slice_.Owns(s.position());
  const int pos = slot_pos_[id];
  if (member && pos < 0) {
    pending_insert_.push_back(id);
    if (index_ != nullptr) index_->Insert(id, s.position());
    return;
  }
  if (!member) {
    if (pos >= 0) {
      pending_remove_.push_back(id);
      if (index_ != nullptr) index_->Remove(id);
    }
    return;
  }
  // Continuing member: patch announcement in place — slab row included,
  // so the SoA columns stay in lockstep without a rebuild.
  SlotSensor& ss = ctx_.sensors[static_cast<size_t>(pos)];
  if (!(ss.location == s.position())) {
    ss.location = s.position();
    ctx_.slabs.x[static_cast<size_t>(pos)] = ss.location.x;
    ctx_.slabs.y[static_cast<size_t>(pos)] = ss.location.y;
    if (index_ != nullptr) index_->Move(id, s.position());
  }
  if (cost_dirty_[id] || privacy_flag_[id]) {
    ss.cost = s.Cost(time);
    ctx_.slabs.cost[static_cast<size_t>(pos)] = ss.cost;
    // Readings (the one thing that drains energy) arrive here with
    // cost_dirty set, so the diagnostic energy column rides the same patch.
    ctx_.slabs.energy[static_cast<size_t>(pos)] = s.RemainingEnergy();
  }
  if (journal_repairs_) repairs_.patched.push_back(id);
}

void AcquisitionEngine::RebuildMembership(int time) {
  std::sort(pending_insert_.begin(), pending_insert_.end());
  std::sort(pending_remove_.begin(), pending_remove_.end());
  if (journal_repairs_) {
    repairs_.inserted = pending_insert_;
    repairs_.removed = pending_remove_;
  }
  MergeSortedMembership(
      &ctx_.sensors, &merge_scratch_, &slot_pos_, pending_insert_,
      pending_remove_,
      [&](SlotSensor& ss, int id) {
        const Sensor& s = sensors_[id];
        ss.location = s.position();
        ss.cost = s.Cost(time);
        ss.inaccuracy = s.profile().inaccuracy;
        ss.trust = s.profile().trust;
        // A freshly inserted member with decaying privacy history must be
        // on the refresh list, or its announced cost would freeze at this
        // slot's value. Matters for cross-shard migrations (the departing
        // shard's refresh state doesn't travel); behavior-neutral for a
        // standalone engine, where such a sensor is either still enrolled
        // or its cost has already aged to the post-window constant.
        if (!privacy_flag_[id] &&
            PrivacyLevelValue(s.profile().privacy) > 0.0 &&
            !s.report_history().empty()) {
          privacy_flag_[id] = 1;
          privacy_refresh_.push_back(id);
        }
      },
      &ctx_.slabs, &slab_scratch_,
      [&](SlotSlabs& out, size_t row, const SlotSensor& ss, int id) {
        out.SetRowFrom(row, ss, sensors_[static_cast<size_t>(id)]);
      });
  pending_insert_.clear();
  pending_remove_.clear();
}

void AcquisitionEngine::AttachIndex() {
  const int n = static_cast<int>(ctx_.sensors.size());
  const bool want =
      index_ != nullptr && n > 0 &&
      !(config_.index_policy == SlotIndexPolicy::kAuto &&
        n < config_.index_auto_threshold);
  if (!want) {
    ctx_.index.reset();
    return;
  }
  if (view_ == nullptr) {
    view_ = std::make_shared<SlotIndexView>(index_.get(), &slot_pos_);
  }
  ctx_.index = view_;
}

const SlotContext& AcquisitionEngine::BeginSlot(int time) {
  // Per-slot scratch dies here: everything the previous slot's selection
  // carved from the arena (candidate plans, evaluator buffers, gain
  // scratch) is invalidated in one pointer reset.
  arena_.Reset();
  if (!config_.incremental) {
    ctx_ = BuildSlotContext(sensors_, config_.working_region, time, config_.dmax,
                            config_.index_policy, config_.index_auto_threshold);
    ctx_.arena = &arena_;  // the assignment above wiped the stamp
    ctx_.pool = pool_.get();
    ctx_.approx = config_.approx;
    ctx_.approx.slot_seed = ApproxSlotSeed(config_.approx, time);
    if (has_pinned_slot_seed_) {
      ctx_.approx.slot_seed = pinned_slot_seed_;
      has_pinned_slot_seed_ = false;
    }
    if (trace_ != nullptr) trace_->BeginSlot(time, ctx_.approx.slot_seed);
    return ctx_;
  }
  if (journal_repairs_) {
    repairs_.inserted.clear();
    repairs_.removed.clear();
    repairs_.patched.clear();
  }
  ctx_.time = time;
  ctx_.arena = &arena_;
  ctx_.pool = pool_.get();
  // Pin the approximate schedulers' per-slot stream: both engine modes
  // stamp the identical derived seed, so approximate selections agree
  // between incremental and rebuild serving bit for bit.
  ctx_.approx = config_.approx;
  ctx_.approx.slot_seed = ApproxSlotSeed(config_.approx, time);
  if (has_pinned_slot_seed_) {
    ctx_.approx.slot_seed = pinned_slot_seed_;
    has_pinned_slot_seed_ = false;
  }
  if (trace_ != nullptr) trace_->BeginSlot(time, ctx_.approx.slot_seed);
  // Privacy-decay set: announced cost drifts with wall-clock time even
  // without any event; membership never changes from it. Sensors also in
  // changed_ get the full refresh below instead. Once every history
  // entry has aged past the privacy window the cost is constant until
  // the next reading (which re-enrolls the sensor via NoteReading), so
  // the set is compacted after writing that final constant value —
  // otherwise every sensor ever read would be refreshed forever and the
  // O(churn) turnover claim would erode with run age.
  size_t keep = 0;
  for (int id : privacy_refresh_) {
    if (changed_flag_[id]) {
      privacy_refresh_[keep++] = id;  // full refresh below; re-evaluate next slot
      continue;
    }
    const Sensor& s = sensors_[id];
    const int pos = slot_pos_[id];
    if (pos >= 0) {
      ctx_.sensors[static_cast<size_t>(pos)].cost = s.Cost(time);
      ctx_.slabs.cost[static_cast<size_t>(pos)] =
          ctx_.sensors[static_cast<size_t>(pos)].cost;
      if (journal_repairs_) repairs_.patched.push_back(id);
    }
    const bool decaying =
        !s.report_history().empty() &&
        time - s.report_history().back() < s.profile().privacy_window;
    if (decaying) {
      privacy_refresh_[keep++] = id;
    } else {
      privacy_flag_[id] = 0;
    }
  }
  privacy_refresh_.resize(keep);
  // Ascending id order turns the refresh loop's registry, context, and
  // slot_pos_ accesses into forward sweeps (and hands RebuildMembership
  // pre-sorted pending lists).
  std::sort(changed_.begin(), changed_.end());
  for (int id : changed_) {
    RefreshMember(id, time);
    changed_flag_[id] = 0;
    cost_dirty_[id] = 0;
  }
  changed_.clear();
  if (!pending_insert_.empty() || !pending_remove_.empty()) {
    RebuildMembership(time);
  }
  AttachIndex();
  return ctx_;
}

void AcquisitionEngine::NoteReading(int id, int time) {
  Sensor& s = sensors_[id];
  s.RecordReading(time);
  MarkChanged(id, /*cost_dirty=*/true);
  if (config_.incremental && !privacy_flag_[id] &&
      PrivacyLevelValue(s.profile().privacy) > 0.0) {
    privacy_flag_[id] = 1;
    privacy_refresh_.push_back(id);
  }
}

void AcquisitionEngine::RecordReadings(const std::vector<int>& sensor_ids,
                                       int time) {
  for (int id : sensor_ids) NoteReading(id, time);
}

void AcquisitionEngine::RecordSlotReadings(const std::vector<int>& slot_indices,
                                           int time) {
  for (int si : slot_indices) {
    NoteReading(ctx_.sensors[static_cast<size_t>(si)].sensor_id, time);
  }
}

const char* AcquisitionEngine::IndexBackendName() const {
  if (!config_.incremental) return "rebuild";
  if (ctx_.index == nullptr) return "none";
  return ctx_.index->Name();
}

}  // namespace psens
