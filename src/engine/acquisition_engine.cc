#include "engine/acquisition_engine.h"

#include <algorithm>
#include <cassert>

#include "core/stochastic_greedy.h"
#include "engine/membership_merge.h"
#include "trace/trace_writer.h"

namespace psens {

/// Presents the engine's id-keyed dynamic index as the slot-indexed
/// SpatialIndex the schedulers consume. ctx_.sensors is sorted ascending
/// by sensor_id, so the id -> slot-index map is monotone and translated
/// result lists stay ascending — the tie-break/accumulation-order half of
/// the exactness contract survives the translation for free.
class AcquisitionEngine::SlotIndexView : public SpatialIndex {
 public:
  SlotIndexView(const SpatialIndex* base, const std::vector<int>* slot_pos)
      : base_(base), slot_pos_(slot_pos) {}

  int size() const override { return base_->size(); }
  void RangeQuery(const Point& center, double radius,
                  std::vector<int>* out) const override {
    base_->RangeQuery(center, radius, out);
    for (int& v : *out) v = (*slot_pos_)[v];
  }
  void RectQuery(const Rect& rect, std::vector<int>* out) const override {
    base_->RectQuery(rect, out);
    for (int& v : *out) v = (*slot_pos_)[v];
  }
  int Nearest(const Point& p) const override {
    const int id = base_->Nearest(p);
    return id < 0 ? -1 : (*slot_pos_)[id];
  }
  const char* Name() const override { return base_->Name(); }

 private:
  const SpatialIndex* base_;
  const std::vector<int>* slot_pos_;
};

AcquisitionEngine::AcquisitionEngine(std::vector<Sensor> sensors,
                                     const ServingConfig& config)
    : AcquisitionEngine(
          std::make_shared<std::vector<Sensor>>(std::move(sensors)), config,
          ShardSlice{}) {}

AcquisitionEngine::AcquisitionEngine(
    std::shared_ptr<std::vector<Sensor>> registry, const ServingConfig& config,
    const ShardSlice& slice)
    : config_(config),
      registry_(std::move(registry)),
      sensors_(*registry_),
      slice_(slice),
      journal_repairs_(slice.sharded()) {
  assert((!slice_.sharded() || config_.incremental) &&
         "shard engines require incremental mode");
  Init();
}

void AcquisitionEngine::Init() {
  const int n = static_cast<int>(sensors_.size());
  for (int i = 0; i < n; ++i) {
    assert(sensors_[i].id() == i && "registry must be id-dense");
    (void)i;
  }
  pipelined_ = config_.pipeline == 2;
  const int nbuf = pipelined_ ? 2 : 1;
  for (int k = 0; k < nbuf; ++k) {
    buf_[k].ctx.dmax = config_.dmax;
    buf_[k].ctx.index_policy = config_.index_policy;
    buf_[k].ctx.index_auto_threshold = config_.index_auto_threshold;
    buf_[k].slot_pos.assign(static_cast<size_t>(n), -1);
  }
  if (config_.threads != 1) {
    pool_ = std::make_unique<ThreadPool>(config_.threads);
  }
  if (!config_.trace_path.empty()) {
    TraceHeader header;
    // Adaptive runs record their per-slot engine choices, which needs the
    // version-2 record layout; plain runs keep writing version-1 bytes.
    header.version =
        config_.slo_ms > 0.0 ? kTraceVersionAdaptive : kTraceVersion;
    header.registry_count = static_cast<uint32_t>(n);
    header.registry_checksum = RegistryChecksum(sensors_);
    header.dmax = config_.dmax;
    header.working_region = config_.working_region;
    header.approx_seed = config_.approx.seed;
    header.epsilon = config_.approx.epsilon;
    header.min_sample = config_.approx.min_sample;
    header.sample_hint = config_.approx.sample_hint;
    trace_ = TraceWriter::Open(config_.trace_path, header);
  }
  // A standalone pipelined engine runs its staged repair on its own
  // single-worker executor (one early task per slot — the overlap comes
  // from the serving thread's concurrent selection, not intra-repair
  // parallelism). Shard engines leave graph_ null: the router's executor
  // drives their EarlyRepairStaged as tasks of its own per-slot graph.
  if (pipelined_ && !slice_.sharded()) {
    graph_ = std::make_unique<TaskGraphExecutor>(1);
  }
  if (!config_.incremental) return;
  changed_flag_.assign(static_cast<size_t>(n), 0);
  cost_dirty_.assign(static_cast<size_t>(n), 0);
  privacy_flag_.assign(static_cast<size_t>(n), 0);
  changed_.reserve(static_cast<size_t>(n));
  if (config_.index_policy != SlotIndexPolicy::kNone) {
    // A shard engine indexes only its slice, so size the backend for its
    // expected share of the population.
    const int expected =
        slice_.sharded() ? std::max(1, n / slice_.map.shards) : n;
    for (int k = 0; k < nbuf; ++k) {
      buf_[k].index = std::make_unique<DynamicSpatialIndex>(
          config_.working_region, config_.index_policy, expected);
    }
  }
  for (int id = 0; id < n; ++id) {
    MarkChanged(id, /*cost_dirty=*/true);
    if (PrivacyLevelValue(sensors_[id].profile().privacy) > 0.0 &&
        !sensors_[id].report_history().empty()) {
      privacy_flag_[id] = 1;
      privacy_refresh_.push_back(id);
    }
  }
}

AcquisitionEngine::~AcquisitionEngine() = default;

void AcquisitionEngine::PinNextSlotSeed(uint64_t slot_seed) {
  pinned_slot_seed_ = slot_seed;
  has_pinned_slot_seed_ = true;
}

bool AcquisitionEngine::FinishTrace() {
  return trace_ != nullptr && trace_->Finish();
}

void AcquisitionEngine::MarkChanged(int id, bool cost_dirty) {
  if (!config_.incremental) return;
  if (cost_dirty) cost_dirty_[id] = 1;
  if (!changed_flag_[id]) {
    changed_flag_[id] = 1;
    changed_.push_back(id);
  }
}

void AcquisitionEngine::ApplyTrace(const Trace& trace, int slot) {
  const int n = static_cast<int>(sensors_.size());
  const int tn = trace.NumSensors();
  // When recording, the mobility slot is journaled as the SensorDelta it
  // is equivalent to, so one replay path serves both churn- and
  // trace-driven runs.
  SensorDelta recorded;
  for (int id = 0; id < n; ++id) {
    Sensor& s = sensors_[id];
    const Point p = id < tn ? trace.Position(slot, id) : Point{0, 0};
    const bool present = id < tn && trace.Present(slot, id);
    if (s.present() == present && s.position() == p) continue;
    if (trace_ != nullptr) {
      if (!present) {
        recorded.departures.push_back(id);
      } else if (!s.present()) {
        recorded.arrivals.push_back(SensorDelta::Placement{id, p});
      } else {
        recorded.moves.push_back(SensorDelta::Placement{id, p});
      }
    }
    s.SetPosition(p, present);
    MarkChanged(id, /*cost_dirty=*/false);
  }
  if (trace_ != nullptr && !recorded.empty()) trace_->StageDelta(recorded);
}

void AcquisitionEngine::ApplyDeltaToRegistry(const SensorDelta& delta) {
  for (const SensorDelta::Placement& a : delta.arrivals) {
    sensors_[a.sensor_id].SetPosition(a.position, true);
    MarkChanged(a.sensor_id, /*cost_dirty=*/false);
  }
  for (int id : delta.departures) {
    sensors_[id].SetPosition(sensors_[id].position(), false);
    MarkChanged(id, /*cost_dirty=*/false);
  }
  for (const SensorDelta::Placement& m : delta.moves) {
    sensors_[m.sensor_id].SetPosition(m.position, true);
    MarkChanged(m.sensor_id, /*cost_dirty=*/false);
  }
  for (const SensorDelta::PriceChange& pc : delta.price_changes) {
    sensors_[pc.sensor_id].SetBasePrice(pc.base_price);
    MarkChanged(pc.sensor_id, /*cost_dirty=*/true);
  }
}

void AcquisitionEngine::ApplyDelta(const SensorDelta& delta) {
  if (trace_ != nullptr) trace_->StageDelta(delta);
  ApplyDeltaToRegistry(delta);
}

void AcquisitionEngine::RefreshMember(SlotBuffer& b, int id, int time) {
  const Sensor& s = sensors_[id];
  const bool member = s.available() &&
                      config_.working_region.Contains(s.position()) &&
                      slice_.Owns(s.position());
  const int pos = b.slot_pos[id];
  if (member && pos < 0) {
    pending_insert_.push_back(id);
    if (b.index != nullptr) b.index->Insert(id, s.position());
    return;
  }
  if (!member) {
    if (pos >= 0) {
      pending_remove_.push_back(id);
      if (b.index != nullptr) b.index->Remove(id);
    }
    return;
  }
  // Continuing member: patch announcement in place — slab row included,
  // so the SoA columns stay in lockstep without a rebuild.
  SlotSensor& ss = b.ctx.sensors[static_cast<size_t>(pos)];
  if (!(ss.location == s.position())) {
    ss.location = s.position();
    b.ctx.slabs.x[static_cast<size_t>(pos)] = ss.location.x;
    b.ctx.slabs.y[static_cast<size_t>(pos)] = ss.location.y;
    if (b.index != nullptr) b.index->Move(id, s.position());
  }
  if (cost_dirty_[id] || privacy_flag_[id]) {
    ss.cost = s.Cost(time);
    b.ctx.slabs.cost[static_cast<size_t>(pos)] = ss.cost;
    // Readings (the one thing that drains energy) arrive here with
    // cost_dirty set, so the diagnostic energy column rides the same patch.
    b.ctx.slabs.energy[static_cast<size_t>(pos)] = s.RemainingEnergy();
  }
  if (journal_repairs_) repairs_.patched.push_back(id);
}

void AcquisitionEngine::RebuildMembership(SlotBuffer& b, int time) {
  std::sort(pending_insert_.begin(), pending_insert_.end());
  std::sort(pending_remove_.begin(), pending_remove_.end());
  if (journal_repairs_) {
    repairs_.inserted = pending_insert_;
    repairs_.removed = pending_remove_;
  }
  MergeSortedMembership(
      &b.ctx.sensors, &merge_scratch_, &b.slot_pos, pending_insert_,
      pending_remove_,
      [&](SlotSensor& ss, int id) {
        const Sensor& s = sensors_[id];
        ss.location = s.position();
        ss.cost = s.Cost(time);
        ss.inaccuracy = s.profile().inaccuracy;
        ss.trust = s.profile().trust;
        // A freshly inserted member with decaying privacy history must be
        // on the refresh list, or its announced cost would freeze at this
        // slot's value. Matters for cross-shard migrations (the departing
        // shard's refresh state doesn't travel); behavior-neutral for a
        // standalone engine, where such a sensor is either still enrolled
        // or its cost has already aged to the post-window constant.
        if (!privacy_flag_[id] &&
            PrivacyLevelValue(s.profile().privacy) > 0.0 &&
            !s.report_history().empty()) {
          privacy_flag_[id] = 1;
          privacy_refresh_.push_back(id);
        }
      },
      &b.ctx.slabs, &slab_scratch_,
      [&](SlotSlabs& out, size_t row, const SlotSensor& ss, int id) {
        out.SetRowFrom(row, ss, sensors_[static_cast<size_t>(id)]);
      });
  pending_insert_.clear();
  pending_remove_.clear();
}

void AcquisitionEngine::AttachIndex(SlotBuffer& b) {
  const int n = static_cast<int>(b.ctx.sensors.size());
  const bool want =
      b.index != nullptr && n > 0 &&
      !(config_.index_policy == SlotIndexPolicy::kAuto &&
        n < config_.index_auto_threshold);
  if (!want) {
    b.ctx.index.reset();
    return;
  }
  if (b.view == nullptr) {
    b.view = std::make_shared<SlotIndexView>(b.index.get(), &b.slot_pos);
  }
  b.ctx.index = b.view;
}

const SlotContext& AcquisitionEngine::BeginSlot(int time) {
  SlotBuffer& b = buf_[front_];
  // Per-slot scratch dies here: everything the previous slot's selection
  // carved from the arena (candidate plans, evaluator buffers, gain
  // scratch) is invalidated in one pointer reset.
  arena_.Reset();
  if (!config_.incremental) {
    b.ctx = BuildSlotContext(sensors_, config_.working_region, time,
                             config_.dmax, config_.index_policy,
                             config_.index_auto_threshold);
    b.ctx.arena = &arena_;  // the assignment above wiped the stamp
    b.ctx.pool = pool_.get();
    b.ctx.approx = config_.approx;
    b.ctx.approx.slot_seed = ApproxSlotSeed(config_.approx, time);
    if (has_pinned_slot_seed_) {
      b.ctx.approx.slot_seed = pinned_slot_seed_;
      has_pinned_slot_seed_ = false;
    }
    if (trace_ != nullptr) trace_->BeginSlot(time, b.ctx.approx.slot_seed);
    return b.ctx;
  }
  if (journal_repairs_) {
    repairs_.inserted.clear();
    repairs_.removed.clear();
    repairs_.patched.clear();
  }
  b.ctx.time = time;
  b.ctx.arena = &arena_;
  b.ctx.pool = pool_.get();
  // Pin the approximate schedulers' per-slot stream: both engine modes
  // stamp the identical derived seed, so approximate selections agree
  // between incremental and rebuild serving bit for bit.
  b.ctx.approx = config_.approx;
  b.ctx.approx.slot_seed = ApproxSlotSeed(config_.approx, time);
  if (has_pinned_slot_seed_) {
    b.ctx.approx.slot_seed = pinned_slot_seed_;
    has_pinned_slot_seed_ = false;
  }
  if (trace_ != nullptr) trace_->BeginSlot(time, b.ctx.approx.slot_seed);
  // Privacy-decay set: announced cost drifts with wall-clock time even
  // without any event; membership never changes from it. Sensors also in
  // changed_ get the full refresh below instead. Once every history
  // entry has aged past the privacy window the cost is constant until
  // the next reading (which re-enrolls the sensor via NoteReading), so
  // the set is compacted after writing that final constant value —
  // otherwise every sensor ever read would be refreshed forever and the
  // O(churn) turnover claim would erode with run age.
  size_t keep = 0;
  for (int id : privacy_refresh_) {
    if (changed_flag_[id]) {
      privacy_refresh_[keep++] = id;  // full refresh below; re-evaluate next slot
      continue;
    }
    const Sensor& s = sensors_[id];
    const int pos = b.slot_pos[id];
    if (pos >= 0) {
      b.ctx.sensors[static_cast<size_t>(pos)].cost = s.Cost(time);
      b.ctx.slabs.cost[static_cast<size_t>(pos)] =
          b.ctx.sensors[static_cast<size_t>(pos)].cost;
      if (journal_repairs_) repairs_.patched.push_back(id);
    }
    const bool decaying =
        !s.report_history().empty() &&
        time - s.report_history().back() < s.profile().privacy_window;
    if (decaying) {
      privacy_refresh_[keep++] = id;
    } else {
      privacy_flag_[id] = 0;
    }
  }
  privacy_refresh_.resize(keep);
  // Ascending id order turns the refresh loop's registry, context, and
  // slot_pos accesses into forward sweeps (and hands RebuildMembership
  // pre-sorted pending lists).
  std::sort(changed_.begin(), changed_.end());
  for (int id : changed_) {
    RefreshMember(b, id, time);
    changed_flag_[id] = 0;
    cost_dirty_[id] = 0;
  }
  changed_.clear();
  if (!pending_insert_.empty() || !pending_remove_.empty()) {
    RebuildMembership(b, time);
  }
  AttachIndex(b);
  return b.ctx;
}

// --- Pipelined slot lifecycle ----------------------------------------------

void AcquisitionEngine::StageNextSlot(int time, const SensorDelta& delta) {
  if (!pipelined_) {
    // Sequential degradation: exactly the ApplyDelta + (deferred)
    // BeginSlot path, so drivers can call Stage/Activate unconditionally.
    ApplyDelta(delta);
    staged_time_ = time;
    return;
  }
  // Trace staging stays on the serving thread, preserving the recorded
  // stream order (slot t's queries were staged before this call).
  if (trace_ != nullptr) trace_->StageDelta(delta);
  staged_time_ = time;
  staged_delta_ = delta;
  assert(graph_ != nullptr &&
         "shard engines are staged by their router's graph");
  graph_->AddTask([this] {
    ApplyDeltaToRegistry(staged_delta_);
    EarlyRepairStaged(staged_time_);
  });
  graph_->Launch();
}

void AcquisitionEngine::StagedIndexApply(SlotBuffer& b, IndexOp op) {
  if (b.index == nullptr) return;
  op_log_.push_back(op);
  switch (op.kind) {
    case IndexOp::kInsert:
      b.index->Insert(op.id, op.p);
      break;
    case IndexOp::kRemove:
      b.index->Remove(op.id);
      break;
    case IndexOp::kMove:
      b.index->Move(op.id, op.p);
      break;
  }
}

void AcquisitionEngine::StageRefreshMember(int id) {
  SlotBuffer& f = buf_[front_];
  SlotBuffer& b = buf_[front_ ^ 1];
  const Sensor& s = sensors_[id];
  const bool member = s.available() &&
                      config_.working_region.Contains(s.position()) &&
                      slice_.Owns(s.position());
  const int pos = f.slot_pos[id];
  if (member && pos < 0) {
    pending_insert_.push_back(id);
    StagedIndexApply(b, IndexOp{IndexOp::kInsert, id, s.position()});
    return;
  }
  if (!member) {
    if (pos >= 0) {
      pending_remove_.push_back(id);
      StagedIndexApply(b, IndexOp{IndexOp::kRemove, id, Point{}});
    }
    return;
  }
  // Continuing member. The front entry holds the previous slot's
  // announcement, so the comparisons below are against exactly the state
  // sequential RefreshMember would patch in place; the patch itself is
  // deferred until the cross-buffer merge fixes positions.
  const SlotSensor& ss = f.ctx.sensors[static_cast<size_t>(pos)];
  const bool moved = !(ss.location == s.position());
  if (moved) StagedIndexApply(b, IndexOp{IndexOp::kMove, id, s.position()});
  staged_patches_.push_back(
      StagedPatch{id, moved, cost_dirty_[id] != 0 || privacy_flag_[id] != 0});
}

void AcquisitionEngine::EarlyRepairStaged(int time) {
  assert(pipelined_ && "staged repair requires double-buffered construction");
  SlotBuffer& f = buf_[front_];
  SlotBuffer& b = buf_[front_ ^ 1];
  if (!config_.incremental) {
    // Reference mode: the overlappable work IS the full rebuild.
    // (Validate rejects this combination with record_readings — a rebuild
    // would re-announce every sensor before the overlapped slot's
    // readings land.)
    b.ctx = BuildSlotContext(sensors_, config_.working_region, time,
                             config_.dmax, config_.index_policy,
                             config_.index_auto_threshold);
    return;
  }
  if (journal_repairs_) {
    repairs_.inserted.clear();
    repairs_.removed.clear();
    repairs_.patched.clear();
  }
  // Catch this buffer's index up: replay the ops the previous staging
  // applied to the other buffer, so both indexes share one op history.
  if (b.index != nullptr) {
    for (const IndexOp& op : replay_log_) {
      switch (op.kind) {
        case IndexOp::kInsert:
          b.index->Insert(op.id, op.p);
          break;
        case IndexOp::kRemove:
          b.index->Remove(op.id);
          break;
        case IndexOp::kMove:
          b.index->Move(op.id, op.p);
          break;
      }
    }
  }
  replay_log_.clear();
  staged_patches_.clear();
  b.ctx.time = time;
  // Privacy compaction — same decisions as BeginSlot's loop (the decaying
  // test reads only registry state this staging cannot change), with the
  // context patches deferred to post-merge positions.
  size_t keep = 0;
  for (int id : privacy_refresh_) {
    if (changed_flag_[id]) {
      privacy_refresh_[keep++] = id;
      continue;
    }
    const Sensor& s = sensors_[id];
    if (f.slot_pos[id] >= 0) {
      staged_patches_.push_back(StagedPatch{id, false, true});
    }
    const bool decaying =
        !s.report_history().empty() &&
        time - s.report_history().back() < s.profile().privacy_window;
    if (decaying) {
      privacy_refresh_[keep++] = id;
    } else {
      privacy_flag_[id] = 0;
    }
  }
  privacy_refresh_.resize(keep);
  std::sort(changed_.begin(), changed_.end());
  for (int id : changed_) {
    StageRefreshMember(id);
    changed_flag_[id] = 0;
    cost_dirty_[id] = 0;
  }
  changed_.clear();
  std::sort(pending_insert_.begin(), pending_insert_.end());
  std::sort(pending_remove_.begin(), pending_remove_.end());
  if (journal_repairs_) {
    repairs_.inserted = pending_insert_;
    repairs_.removed = pending_remove_;
  }
  // Cross-buffer membership merge: always runs (zero events degenerate to
  // a straight copy), rebuilding the back buffer's member array, slabs,
  // and slot_pos from the immutable front state.
  MergeSortedMembershipInto(
      f.ctx.sensors, f.ctx.slabs, f.slot_pos, &b.ctx.sensors, &b.ctx.slabs,
      &b.slot_pos, pending_insert_, pending_remove_,
      [&](SlotSensor& ss, int id) {
        const Sensor& s = sensors_[id];
        ss.location = s.position();
        ss.cost = s.Cost(time);
        ss.inaccuracy = s.profile().inaccuracy;
        ss.trust = s.profile().trust;
        // Same migrated-member re-enrollment as RebuildMembership's fill.
        if (!privacy_flag_[id] &&
            PrivacyLevelValue(s.profile().privacy) > 0.0 &&
            !s.report_history().empty()) {
          privacy_flag_[id] = 1;
          privacy_refresh_.push_back(id);
        }
      },
      [&](SlotSlabs& out, size_t row, const SlotSensor& ss, int id) {
        out.SetRowFrom(row, ss, sensors_[static_cast<size_t>(id)]);
      });
  pending_insert_.clear();
  pending_remove_.clear();
  // Deferred announcement patches, now at post-merge back positions. The
  // values and gating predicates are byte-for-byte sequential
  // RefreshMember's / the compaction loop's.
  for (const StagedPatch& p : staged_patches_) {
    const int pos = b.slot_pos[p.id];
    if (pos < 0) continue;
    const Sensor& s = sensors_[p.id];
    SlotSensor& ss = b.ctx.sensors[static_cast<size_t>(pos)];
    if (p.loc) {
      ss.location = s.position();
      b.ctx.slabs.x[static_cast<size_t>(pos)] = ss.location.x;
      b.ctx.slabs.y[static_cast<size_t>(pos)] = ss.location.y;
    }
    if (p.cost) {
      ss.cost = s.Cost(time);
      b.ctx.slabs.cost[static_cast<size_t>(pos)] = ss.cost;
      b.ctx.slabs.energy[static_cast<size_t>(pos)] = s.RemainingEnergy();
    }
    if (journal_repairs_) repairs_.patched.push_back(p.id);
  }
  AttachIndex(b);
}

void AcquisitionEngine::LateFeedbackStaged(
    const std::vector<std::pair<int, int>>& readings, int slot_time) {
  if (readings.empty()) return;
  assert(config_.incremental &&
         "readings feedback requires incremental mode when pipelined");
  SlotBuffer& b = buf_[front_ ^ 1];
  // Two passes: charge every reading first, then re-cost — so announced
  // costs see the complete post-slot history exactly as the sequential
  // NoteReading-then-BeginSlot order produced.
  for (const std::pair<int, int>& r : readings) {
    sensors_[static_cast<size_t>(r.first)].RecordReading(r.second);
  }
  for (const std::pair<int, int>& r : readings) {
    const int id = r.first;
    const Sensor& s = sensors_[static_cast<size_t>(id)];
    const int pos = b.slot_pos[id];
    if (pos >= 0) {
      SlotSensor& ss = b.ctx.sensors[static_cast<size_t>(pos)];
      ss.cost = s.Cost(slot_time);
      b.ctx.slabs.cost[static_cast<size_t>(pos)] = ss.cost;
      b.ctx.slabs.energy[static_cast<size_t>(pos)] = s.RemainingEnergy();
    }
    if (!privacy_flag_[id] &&
        PrivacyLevelValue(s.profile().privacy) > 0.0) {
      privacy_flag_[id] = 1;
      privacy_refresh_.push_back(id);
    }
  }
}

void AcquisitionEngine::FlipStaged() {
  // The ops this staging applied to the (about-to-be) front index await
  // replay onto the new back index at the next staging.
  std::swap(replay_log_, op_log_);
  op_log_.clear();
  front_ ^= 1;
}

const SlotContext& AcquisitionEngine::ActivateStagedSlot() {
  if (!pipelined_) return BeginSlot(staged_time_);
  graph_->Join();  // commit barrier; rethrows staged-task errors
  SlotBuffer& b = buf_[front_ ^ 1];
  LateFeedbackStaged(pending_readings_, staged_time_);
  pending_readings_.clear();
  // The previous slot's selection is complete by the time the driver
  // activates, so its arena scratch is dead; one shared arena serves
  // both buffers.
  arena_.Reset();
  b.ctx.time = staged_time_;
  b.ctx.arena = &arena_;
  b.ctx.pool = pool_.get();
  b.ctx.approx = config_.approx;
  b.ctx.approx.slot_seed = ApproxSlotSeed(config_.approx, staged_time_);
  if (has_pinned_slot_seed_) {
    b.ctx.approx.slot_seed = pinned_slot_seed_;
    has_pinned_slot_seed_ = false;
  }
  if (trace_ != nullptr) {
    trace_->BeginSlot(staged_time_, b.ctx.approx.slot_seed);
  }
  FlipStaged();
  return buf_[front_].ctx;
}

// ---------------------------------------------------------------------------

void AcquisitionEngine::NoteReading(int id, int time) {
  Sensor& s = sensors_[id];
  s.RecordReading(time);
  MarkChanged(id, /*cost_dirty=*/true);
  if (config_.incremental && !privacy_flag_[id] &&
      PrivacyLevelValue(s.profile().privacy) > 0.0) {
    privacy_flag_[id] = 1;
    privacy_refresh_.push_back(id);
  }
}

void AcquisitionEngine::RecordReadings(const std::vector<int>& sensor_ids,
                                       int time) {
  if (pipelined_) {
    // A staging may be in flight: defer — ActivateStagedSlot applies the
    // queue at the commit barrier.
    for (int id : sensor_ids) pending_readings_.emplace_back(id, time);
    return;
  }
  for (int id : sensor_ids) NoteReading(id, time);
}

void AcquisitionEngine::RecordSlotReadings(const std::vector<int>& slot_indices,
                                           int time) {
  const SlotContext& ctx = buf_[front_].ctx;
  if (pipelined_) {
    for (int si : slot_indices) {
      pending_readings_.emplace_back(
          ctx.sensors[static_cast<size_t>(si)].sensor_id, time);
    }
    return;
  }
  for (int si : slot_indices) {
    NoteReading(ctx.sensors[static_cast<size_t>(si)].sensor_id, time);
  }
}

const char* AcquisitionEngine::IndexBackendName() const {
  if (!config_.incremental) return "rebuild";
  if (buf_[front_].ctx.index == nullptr) return "none";
  return buf_[front_].ctx.index->Name();
}

}  // namespace psens
