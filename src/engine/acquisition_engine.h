#ifndef PSENS_ENGINE_ACQUISITION_ENGINE_H_
#define PSENS_ENGINE_ACQUISITION_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <utility>

#include "common/geometry.h"
#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "core/arena.h"
#include "core/sensor.h"
#include "core/sensor_delta.h"
#include "core/slot.h"
#include "engine/serving_config.h"
#include "engine/serving_engine.h"
#include "index/dynamic_index.h"
#include "mobility/trace.h"
#include "shard/shard_map.h"

namespace psens {

class TraceWriter;

/// Long-running acquisition service state: owns the sensor registry, the
/// current slot context, and a *dynamic* spatial index, carrying all three
/// across time slots. Callers stream in population changes (a mobility
/// trace slot or a churn delta), call BeginSlot to get the slot context
/// schedulers consume, and report the slot's purchased readings back:
///
///   AcquisitionEngine engine(std::move(sensors), config);
///   for (int t = 0; t < slots; ++t) {
///     engine.ApplyTrace(trace, t);            // or engine.ApplyDelta(...)
///     const SlotContext& slot = engine.BeginSlot(t);
///     ... schedule queries against `slot` ...
///     engine.RecordSlotReadings(result.selected_sensors, t);
///   }
///
/// In incremental mode BeginSlot only touches what the delta invalidated:
/// membership changes merge into the sorted slot-sensor array, moved
/// sensors patch their location in place and in the index, and announced
/// costs are recomputed only for sensors whose cost can actually have
/// changed (price re-announcements, readings taken, and the privacy decay
/// set — see below). The resulting context is bit-identical to a from-
/// scratch BuildSlotContext over the same registry.
///
/// As a shard (the ShardSlice constructor, used by shard/shard_router.h):
/// the registry is shared across all shard engines, slot membership is
/// additionally filtered by shard ownership (ShardSlice::Owns), and the
/// engine journals its per-slot context repairs (last_repairs) so the
/// router can patch its merged global context in O(churn). Shard engines
/// never mutate the shared registry — the router applies deltas and
/// notifies owners through NoteChange.
///
/// The registry must be id-dense: sensors_[i].id() == i (what
/// GenerateSensors produces). Asserted at construction.
class AcquisitionEngine : public ServingEngine {
 public:
  AcquisitionEngine(std::vector<Sensor> sensors, const ServingConfig& config);
  /// Shard-engine constructor: a shared registry plus this engine's slice
  /// of the shard map. Requires config.incremental when the slice is
  /// actually sharded. Repair journaling (last_repairs) is enabled.
  AcquisitionEngine(std::shared_ptr<std::vector<Sensor>> registry,
                    const ServingConfig& config, const ShardSlice& slice);
  ~AcquisitionEngine() override;

  // Pinned: the slot context's index view holds pointers into this
  // object (slot_pos_, the dynamic index), so a moved-from or copied
  // engine would hand schedulers dangling state.
  AcquisitionEngine(const AcquisitionEngine&) = delete;
  AcquisitionEngine& operator=(const AcquisitionEngine&) = delete;
  AcquisitionEngine(AcquisitionEngine&&) = delete;
  AcquisitionEngine& operator=(AcquisitionEngine&&) = delete;

  /// Streams one mobility-trace slot in as a delta: only sensors whose
  /// position or presence actually changed are touched. Sensors beyond the
  /// trace width are marked absent (same convention as ApplyTraceSlot).
  void ApplyTrace(const Trace& trace, int slot) override;

  /// Applies a churn delta (arrivals/departures/moves/price changes).
  void ApplyDelta(const SensorDelta& delta) override;

  /// Finalizes announcements for slot `time` and returns the context.
  /// Valid until the next BeginSlot call or engine destruction.
  const SlotContext& BeginSlot(int time) override;

  /// Pipelined slot lifecycle (see ServingEngine). With
  /// ServingConfig::pipeline == 2, StageNextSlot journals the delta,
  /// copies it, and launches the *back* buffer's repair (delta
  /// application, membership merge, announced-cost refresh, dynamic-index
  /// maintenance) on the engine's task-graph executor, overlapping the
  /// caller's in-flight selection over the *front* buffer.
  /// ActivateStagedSlot joins that work, applies the deferred readings
  /// feedback, stamps the slot, and flips buffers. With pipeline < 2 both
  /// degrade to the sequential ApplyDelta + BeginSlot path.
  void StageNextSlot(int time, const SensorDelta& delta) override;
  const SlotContext& ActivateStagedSlot() override;

  /// Charges one reading each to the given *global sensor ids* at slot
  /// `time` (energy + privacy history), flagging their announcements for
  /// refresh at the next BeginSlot.
  void RecordReadings(const std::vector<int>& sensor_ids, int time) override;

  /// Same, addressed by the current context's slot-sensor indices (the
  /// form scheduler results use).
  void RecordSlotReadings(const std::vector<int>& slot_indices,
                          int time) override;

  const std::vector<Sensor>& sensors() const override { return sensors_; }
  const ServingConfig& config() const override { return config_; }
  /// Name of the live dynamic-index backend ("dynamic-grid",
  /// "kd-buffered", "rebuild" in reference mode, "none" when unindexed).
  const char* IndexBackendName() const override;

  /// Pins the approx slot seed the *next* BeginSlot stamps, overriding
  /// the (approx.seed, time) derivation for that one slot. The trace
  /// replayer uses this to impose each recorded slot's seed, which is
  /// what lets a replayed stochastic run reproduce the live run's
  /// selections without knowing the original base seed.
  void PinNextSlotSeed(uint64_t slot_seed) override;

  /// The live trace recorder, or null when ServingConfig::trace_path is
  /// empty (or the file could not be created). The serving layer stages
  /// each slot's query batch here after BeginSlot.
  TraceWriter* trace_writer() override { return trace_.get(); }

  /// Finalizes the trace (patches the slot count, closes the file).
  /// Called automatically on destruction; call it explicitly to read the
  /// trace back while the engine lives. Returns false if recording was
  /// off or any write failed.
  bool FinishTrace() override;

  // --- Shard-engine surface (shard/shard_router.h) -----------------------

  /// The per-slot context repairs the last BeginSlot performed, journaled
  /// only for shard engines (the ShardSlice constructor): the membership
  /// inserts/removes (sorted ascending by id) and the continuing members
  /// whose announcement payload was rewritten in place.
  struct SlotRepairs {
    std::vector<int> inserted;
    std::vector<int> removed;
    std::vector<int> patched;
  };
  const SlotRepairs& last_repairs() const { return repairs_; }

  /// Router-side registry mutation hook: the router applies deltas to the
  /// shared registry itself (once, in recorded order) and notifies the
  /// owning engine(s) here so the next BeginSlot re-evaluates the sensor.
  void NoteChange(int id, bool cost_dirty) { MarkChanged(id, cost_dirty); }

  /// The raw id-keyed dynamic index of the *front* (active) buffer (null
  /// when unindexed or in rebuild mode) — the router's sharded index view
  /// fans queries out to these. In pipelined mode the front index is
  /// immutable between flips, so the view may probe it while the back
  /// buffer's repair is in flight.
  const SpatialIndex* raw_dynamic_index() const {
    return buf_[front_].index.get();
  }

  /// This engine's current slot entry for global sensor `id`, or null
  /// when the sensor is not a member here. Valid until the next
  /// BeginSlot. The router copies announcement payloads from here when
  /// reconciling its merged context.
  const SlotSensor* MemberEntry(int id) const {
    const SlotBuffer& b = buf_[front_];
    const int pos = b.slot_pos[id];
    return pos < 0 ? nullptr : &b.ctx.sensors[static_cast<size_t>(pos)];
  }

  // --- Staged shard surface (router-driven pipelining) -------------------
  //
  // A ShardRouter with pipeline == 2 drives its shard engines' staged
  // repair from its own task graph instead of letting each shard run one:
  // per slot it calls EarlyRepairStaged on every shard (concurrent graph
  // tasks, after the router applied the delta), reconciles the staged
  // journals/entries into its merged back context, then at its commit
  // barrier applies readings feedback through LateFeedbackStaged and
  // flips every shard with FlipStaged in lockstep with its own buffers.

  /// Repairs this engine's *back* buffer for slot `time` from the marks
  /// accumulated since the last flip (the early, overlappable phase of a
  /// pipelined slot). Requires double-buffered construction
  /// (ServingConfig::pipeline == 2). Journals repairs for shard engines.
  void EarlyRepairStaged(int time);

  /// Applies the previous slot's readings feedback to the registry and
  /// the *back* buffer: each (sensor id, reading slot) pair is charged
  /// via Sensor::RecordReading, then the sensor's staged announcement is
  /// re-costed at `slot_time` and enrolled for privacy refresh — the
  /// deferred equivalent of the sequential NoteReading + RefreshMember
  /// sequence. Serving-thread only, after the staged repair joined.
  void LateFeedbackStaged(const std::vector<std::pair<int, int>>& readings,
                          int slot_time);

  /// Promotes the back buffer to front (and queues the staged index ops
  /// for replay onto the new back buffer's index at the next staging).
  void FlipStaged();

  /// The *back* buffer's slot entry for `id` after EarlyRepairStaged, or
  /// null when not a staged member. The router's staged reconcile copies
  /// announcement payloads from here.
  const SlotSensor* StagedMemberEntry(int id) const {
    const SlotBuffer& b = buf_[front_ ^ 1];
    const int pos = b.slot_pos[id];
    return pos < 0 ? nullptr : &b.ctx.sensors[static_cast<size_t>(pos)];
  }

 private:
  /// Adapter presenting the engine's id-keyed dynamic index as the
  /// slot-indexed SpatialIndex schedulers expect. Sensor ids ascend with
  /// slot indices, so translated results stay ascending.
  class SlotIndexView;

  /// One copy of the per-slot serving state. Sequential serving uses
  /// buf_[0] only; pipelined serving (ServingConfig::pipeline == 2)
  /// double-buffers so the staged repair of slot t+1 writes the back
  /// buffer while slot t's selection reads the front one. Each buffer's
  /// index view is pinned to that buffer's index and slot_pos, so a
  /// context handed out at a flip keeps translating through the right
  /// map.
  struct SlotBuffer {
    SlotContext ctx;
    /// id -> position in ctx.sensors, or -1 when not a member.
    std::vector<int> slot_pos;
    std::unique_ptr<DynamicSpatialIndex> index;
    std::shared_ptr<SlotIndexView> view;
  };

  /// One dynamic-index mutation, journaled during a staged repair so the
  /// identical op sequence can be replayed onto the other buffer's index
  /// at the next staging — both indexes then share the exact op history
  /// (including kAuto rechoice counters), which keeps their query
  /// behavior, and therefore selection outcomes, bitwise in lockstep
  /// with a sequential single-index run.
  struct IndexOp {
    enum Kind { kInsert, kRemove, kMove };
    Kind kind;
    int id;
    Point p;
  };

  /// A continuing member whose staged announcement needs patching after
  /// the cross-buffer membership merge lands (positions are only known
  /// post-merge).
  struct StagedPatch {
    int id;
    bool loc;
    bool cost;
  };

  void Init();
  void MarkChanged(int id, bool cost_dirty);
  void NoteReading(int id, int time);
  void ApplyDeltaToRegistry(const SensorDelta& delta);
  void RefreshMember(SlotBuffer& b, int id, int time);
  void RebuildMembership(SlotBuffer& b, int time);
  void AttachIndex(SlotBuffer& b);
  /// Classification half of RefreshMember for the staged path: reads the
  /// *front* buffer's membership, applies index ops to the *back* index
  /// (journaling them), and defers context patches to staged_patches_.
  void StageRefreshMember(int id);
  void StagedIndexApply(SlotBuffer& b, IndexOp op);

  ServingConfig config_;
  /// The sensor registry. Exclusively owned by a standalone engine;
  /// shared across all shard engines of one router (each mutating it only
  /// through the router's single-writer delta application).
  std::shared_ptr<std::vector<Sensor>> registry_;
  /// Alias of *registry_ (the engine is pinned, so the reference is safe).
  std::vector<Sensor>& sensors_;
  /// This engine's slice of the shard map; default slice owns everything.
  ShardSlice slice_;
  /// Journal context repairs into repairs_ (shard engines only).
  bool journal_repairs_ = false;
  SlotRepairs repairs_;
  /// Double-buffered slot state; front_ indexes the active buffer (always
  /// 0 in sequential mode).
  SlotBuffer buf_[2];
  int front_ = 0;
  /// Sensors touched since the last BeginSlot (dedup by flag).
  std::vector<int> changed_;
  std::vector<char> changed_flag_;
  /// Subset of changed_ whose announced cost must be recomputed.
  std::vector<char> cost_dirty_;
  /// Sensors whose privacy cost decays with wall-clock time (privacy
  /// multiplier > 0 and non-empty report history): refreshed every slot.
  std::vector<int> privacy_refresh_;
  std::vector<char> privacy_flag_;
  /// Membership changes discovered by BeginSlot, merged in one pass.
  std::vector<int> pending_insert_;
  std::vector<int> pending_remove_;
  /// Merge target whose capacity persists across slots (swapped with
  /// ctx_.sensors after each membership rebuild).
  std::vector<SlotSensor> merge_scratch_;
  /// Slab-column merge target, swapped with ctx_.slabs in lockstep with
  /// merge_scratch_ (engine/membership_merge.h).
  SlotSlabs slab_scratch_;
  /// Slot-lifetime scratch arena handed to schedulers through
  /// SlotContext::arena; reset at every BeginSlot (or, pipelined, at each
  /// ActivateStagedSlot — by which point the previous selection's scratch
  /// is dead). One arena serves both buffers.
  SlotArena arena_;
  /// Intra-slot selection pool (ServingConfig::threads), handed to
  /// schedulers through SlotContext::pool. Null when threads == 1.
  std::unique_ptr<ThreadPool> pool_;
  /// Live trace recorder (ServingConfig::trace_path); null when off.
  std::unique_ptr<TraceWriter> trace_;
  /// One-shot approx-seed override for the next BeginSlot (replay).
  uint64_t pinned_slot_seed_ = 0;
  bool has_pinned_slot_seed_ = false;

  // --- Pipelined serving state (ServingConfig::pipeline == 2) ------------
  /// Double buffers allocated; Stage/Activate run the overlapped path.
  bool pipelined_ = false;
  /// Work-stealing executor the staged repair runs on. Standalone engines
  /// own one; shard engines leave it null (the router's graph drives them
  /// through EarlyRepairStaged).
  std::unique_ptr<TaskGraphExecutor> graph_;
  int staged_time_ = 0;
  /// Engine-owned copy of the staged slot's delta (the caller's delta may
  /// die before the early task consumes it).
  SensorDelta staged_delta_;
  std::vector<StagedPatch> staged_patches_;
  /// Index ops journaled by the in-flight staging (op_log_) and the ops
  /// of the previous staging awaiting replay onto the new back index
  /// (replay_log_); swapped at each flip.
  std::vector<IndexOp> op_log_;
  std::vector<IndexOp> replay_log_;
  /// Deferred readings feedback: (sensor id, reading slot) pairs queued
  /// by RecordReadings while a staging is in flight, applied at the next
  /// ActivateStagedSlot.
  std::vector<std::pair<int, int>> pending_readings_;
};

}  // namespace psens

#endif  // PSENS_ENGINE_ACQUISITION_ENGINE_H_
