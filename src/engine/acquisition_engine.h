#ifndef PSENS_ENGINE_ACQUISITION_ENGINE_H_
#define PSENS_ENGINE_ACQUISITION_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/thread_pool.h"
#include "core/sensor.h"
#include "core/sensor_delta.h"
#include "core/slot.h"
#include "index/dynamic_index.h"
#include "mobility/trace.h"

namespace psens {

class TraceWriter;

struct EngineConfig {
  /// Working region filtering slot membership (same role as the
  /// `working_region` argument of BuildSlotContext).
  Rect working_region;
  double dmax = 5.0;
  SlotIndexPolicy index_policy = SlotIndexPolicy::kAuto;
  int index_auto_threshold = kSlotIndexAutoThreshold;
  /// true: repair the slot context and spatial index from deltas (O(churn)
  /// per slot). false: reference mode — BeginSlot rebuilds both from the
  /// full registry exactly like the pre-engine batch loops. Both modes
  /// produce bit-identical slot contexts, selections, and payments
  /// (tests/streaming_equivalence_test.cc).
  bool incremental = true;
  /// Worker threads for *intra-slot* parallel selection: BeginSlot attaches
  /// an engine-owned ThreadPool to SlotContext::pool, which the greedy
  /// engines use to shard each round's valuation batch
  /// (core/batch_eval.h). 1 (default) = serial, no pool; 0 = hardware
  /// concurrency; N > 1 = that many workers. Selections, payments, and
  /// ValuationCalls() are bit-identical for every value — the knob only
  /// buys wall-clock (bench/fig12_streaming --threads).
  int threads = 1;
  /// Approximate-scheduler knobs, stamped onto every slot context.
  /// BeginSlot derives the per-slot RNG stream from (approx.seed, time)
  /// unless approx.slot_seed pins it, so an approximate selection re-run
  /// for the same slot — incremental or rebuild mode, any thread count —
  /// is reproducible (core/stochastic_greedy.h).
  ApproxParams approx;
  /// When non-empty, the engine records its input stream — every
  /// ApplyDelta/ApplyTrace change and every BeginSlot with its stamped
  /// per-slot approx seed — to a binary trace at this path
  /// (src/trace/trace_format.h). Query batches are staged by the serving
  /// layer through trace_writer(); trace/slot_server.h does it for the
  /// shared record/replay substrate. Recording never alters scheduling:
  /// a traced run selects bit-identically to an untraced one.
  std::string trace_path;
};

/// Long-running acquisition service state: owns the sensor registry, the
/// current slot context, and a *dynamic* spatial index, carrying all three
/// across time slots. Callers stream in population changes (a mobility
/// trace slot or a churn delta), call BeginSlot to get the slot context
/// schedulers consume, and report the slot's purchased readings back:
///
///   AcquisitionEngine engine(std::move(sensors), config);
///   for (int t = 0; t < slots; ++t) {
///     engine.ApplyTrace(trace, t);            // or engine.ApplyDelta(...)
///     const SlotContext& slot = engine.BeginSlot(t);
///     ... schedule queries against `slot` ...
///     engine.RecordSlotReadings(result.selected_sensors, t);
///   }
///
/// In incremental mode BeginSlot only touches what the delta invalidated:
/// membership changes merge into the sorted slot-sensor array, moved
/// sensors patch their location in place and in the index, and announced
/// costs are recomputed only for sensors whose cost can actually have
/// changed (price re-announcements, readings taken, and the privacy decay
/// set — see below). The resulting context is bit-identical to a from-
/// scratch BuildSlotContext over the same registry.
///
/// The registry must be id-dense: sensors_[i].id() == i (what
/// GenerateSensors produces). Asserted at construction.
class AcquisitionEngine {
 public:
  AcquisitionEngine(std::vector<Sensor> sensors, const EngineConfig& config);
  ~AcquisitionEngine();

  // Pinned: the slot context's index view holds pointers into this
  // object (slot_pos_, the dynamic index), so a moved-from or copied
  // engine would hand schedulers dangling state.
  AcquisitionEngine(const AcquisitionEngine&) = delete;
  AcquisitionEngine& operator=(const AcquisitionEngine&) = delete;
  AcquisitionEngine(AcquisitionEngine&&) = delete;
  AcquisitionEngine& operator=(AcquisitionEngine&&) = delete;

  /// Streams one mobility-trace slot in as a delta: only sensors whose
  /// position or presence actually changed are touched. Sensors beyond the
  /// trace width are marked absent (same convention as ApplyTraceSlot).
  void ApplyTrace(const Trace& trace, int slot);

  /// Applies a churn delta (arrivals/departures/moves/price changes).
  void ApplyDelta(const SensorDelta& delta);

  /// Finalizes announcements for slot `time` and returns the context.
  /// Valid until the next BeginSlot call or engine destruction.
  const SlotContext& BeginSlot(int time);

  /// Charges one reading each to the given *global sensor ids* at slot
  /// `time` (energy + privacy history), flagging their announcements for
  /// refresh at the next BeginSlot.
  void RecordReadings(const std::vector<int>& sensor_ids, int time);

  /// Same, addressed by the current context's slot-sensor indices (the
  /// form scheduler results use).
  void RecordSlotReadings(const std::vector<int>& slot_indices, int time);

  const std::vector<Sensor>& sensors() const { return sensors_; }
  const EngineConfig& config() const { return config_; }
  /// Name of the live dynamic-index backend ("dynamic-grid",
  /// "kd-buffered", "rebuild" in reference mode, "none" when unindexed).
  const char* IndexBackendName() const;

  /// Pins the approx slot seed the *next* BeginSlot stamps, overriding
  /// the (approx.seed, time) derivation for that one slot. The trace
  /// replayer uses this to impose each recorded slot's seed, which is
  /// what lets a replayed stochastic run reproduce the live run's
  /// selections without knowing the original base seed.
  void PinNextSlotSeed(uint64_t slot_seed);

  /// The live trace recorder, or null when EngineConfig::trace_path is
  /// empty (or the file could not be created). The serving layer stages
  /// each slot's query batch here after BeginSlot.
  TraceWriter* trace_writer() { return trace_.get(); }

  /// Finalizes the trace (patches the slot count, closes the file).
  /// Called automatically on destruction; call it explicitly to read the
  /// trace back while the engine lives. Returns false if recording was
  /// off or any write failed.
  bool FinishTrace();

 private:
  /// Adapter presenting the engine's id-keyed dynamic index as the
  /// slot-indexed SpatialIndex schedulers expect. Sensor ids ascend with
  /// slot indices, so translated results stay ascending.
  class SlotIndexView;

  void MarkChanged(int id, bool cost_dirty);
  void NoteReading(int id, int time);
  size_t InsertPosition(int id, size_t old_size) const;
  void RefreshMember(int id, int time);
  void RebuildMembership(int time);
  void AttachIndex();

  EngineConfig config_;
  std::vector<Sensor> sensors_;
  SlotContext ctx_;
  /// id -> position in ctx_.sensors, or -1 when not a member.
  std::vector<int> slot_pos_;
  /// Sensors touched since the last BeginSlot (dedup by flag).
  std::vector<int> changed_;
  std::vector<char> changed_flag_;
  /// Subset of changed_ whose announced cost must be recomputed.
  std::vector<char> cost_dirty_;
  /// Sensors whose privacy cost decays with wall-clock time (privacy
  /// multiplier > 0 and non-empty report history): refreshed every slot.
  std::vector<int> privacy_refresh_;
  std::vector<char> privacy_flag_;
  /// Membership changes discovered by BeginSlot, merged in one pass.
  std::vector<int> pending_insert_;
  std::vector<int> pending_remove_;
  /// Merge target whose capacity persists across slots (swapped with
  /// ctx_.sensors after each membership rebuild).
  std::vector<SlotSensor> merge_scratch_;
  std::unique_ptr<DynamicSpatialIndex> index_;
  std::shared_ptr<SlotIndexView> view_;
  /// Intra-slot selection pool (EngineConfig::threads), handed to
  /// schedulers through SlotContext::pool. Null when threads == 1.
  std::unique_ptr<ThreadPool> pool_;
  /// Live trace recorder (EngineConfig::trace_path); null when off.
  std::unique_ptr<TraceWriter> trace_;
  /// One-shot approx-seed override for the next BeginSlot (replay).
  uint64_t pinned_slot_seed_ = 0;
  bool has_pinned_slot_seed_ = false;
};

}  // namespace psens

#endif  // PSENS_ENGINE_ACQUISITION_ENGINE_H_
