#ifndef PSENS_ENGINE_MEMBERSHIP_MERGE_H_
#define PSENS_ENGINE_MEMBERSHIP_MERGE_H_

#include <cstring>
#include <vector>

#include "core/slot.h"

namespace psens {

/// Old-array position where a new member with `id` slots into a member
/// array sorted ascending by sensor id: the position of the next live
/// member above it. Registries are near-fully live, so a forward scan of
/// slot_pos (4 bytes/step, sequential) almost always hits on the first
/// probe — and unlike a binary search of the member array, it stays
/// valid mid-merge: entries for ids above the one being inserted are
/// untouched old positions (the in-place merge only rewrites entries at
/// or below the current event id).
inline size_t MemberInsertPosition(const std::vector<int>& slot_pos, int id,
                                   size_t old_size) {
  // Cold build (slot 0): nothing is live yet, and without this early-out
  // every insert would scan to the registry end — O(n^2) over a fresh
  // million-sensor registry.
  if (old_size == 0) return 0;
  const int registry = static_cast<int>(slot_pos.size());
  for (int j = id + 1; j < registry; ++j) {
    if (slot_pos[j] >= 0) return static_cast<size_t>(slot_pos[j]);
  }
  return old_size;
}

/// Applies a sorted batch of membership events to a member array sorted
/// ascending by sensor id — the one merge implementation behind both the
/// single engine's slot turnover (AcquisitionEngine::RebuildMembership)
/// and the ShardRouter's cross-shard reconciliation, so the two paths
/// cannot drift.
///
/// Segment merge into a scratch buffer whose capacity persists across
/// slots. With k churn events over n members the array has at most k+1
/// unchanged runs; each run moves with one memcpy (SlotSensor is
/// trivially copyable) followed by a fused fixup of the shifted .index
/// fields and slot_pos entries while the run is still cache-hot. The
/// O(n) byte traffic is unavoidable (every element after the first event
/// shifts), but at streaming bandwidth it undercuts both a per-element
/// branch-and-push_back loop and an in-place read-modify-write pass.
///
/// When `slabs`/`slab_scratch` are non-null, the SoA columns
/// (core/slot.h SlotSlabs) ride the same merge: every copy_run memcpys
/// the identical row range of each column, so the slabs stay in lockstep
/// with `members` at no extra bookkeeping, and `slab_fill(out, row, ss,
/// id)` is invoked (after `fill`, with `ss` the freshly filled entry and
/// `out` the merge-target slabs) to populate a freshly inserted row —
/// typically out.SetRowFrom(row, ss, registry[id]). Pass nulls for the
/// legacy slab-free merge.
///
/// `inserts` and `removes` must be sorted ascending and disjoint;
/// `slot_pos` maps sensor id -> position in `members` (-1 = non-member)
/// and is kept consistent. `fill(ss, id)` populates a freshly inserted
/// entry's payload (location/cost/inaccuracy/trust); .index and
/// .sensor_id are set by the merge. fill is invoked in ascending id
/// order. `members`/`scratch` (and the slab pairs) are swapped on return.
template <typename FillFn, typename SlabFillFn>
void MergeSortedMembership(std::vector<SlotSensor>* members,
                           std::vector<SlotSensor>* scratch,
                           std::vector<int>* slot_pos,
                           const std::vector<int>& inserts,
                           const std::vector<int>& removes, FillFn&& fill,
                           SlotSlabs* slabs, SlotSlabs* slab_scratch,
                           SlabFillFn&& slab_fill) {
  const size_t old_size = members->size();
  scratch->resize(old_size + inserts.size());
  const bool merge_slabs = slabs != nullptr && slab_scratch != nullptr;
  if (merge_slabs) slab_scratch->Resize(old_size + inserts.size());
  const SlotSensor* src = members->data();
  SlotSensor* dst = scratch->data();
  size_t si = 0;  // source cursor (old array)
  size_t di = 0;  // destination cursor
  const auto copy_column = [](std::vector<double>& to,
                              const std::vector<double>& from, size_t di_,
                              size_t si_, size_t len) {
    std::memcpy(to.data() + di_, from.data() + si_, len * sizeof(double));
  };
  const auto copy_run = [&](size_t src_end) {
    const size_t len = src_end - si;
    if (len == 0) return;
    std::memcpy(dst + di, src + si, len * sizeof(SlotSensor));
    if (merge_slabs) {
      copy_column(slab_scratch->x, slabs->x, di, si, len);
      copy_column(slab_scratch->y, slabs->y, di, si, len);
      copy_column(slab_scratch->cost, slabs->cost, di, si, len);
      copy_column(slab_scratch->inaccuracy, slabs->inaccuracy, di, si, len);
      copy_column(slab_scratch->trust, slabs->trust, di, si, len);
      copy_column(slab_scratch->privacy_mult, slabs->privacy_mult, di, si, len);
      copy_column(slab_scratch->energy, slabs->energy, di, si, len);
    }
    if (di != si) {
      const int shift = static_cast<int>(di) - static_cast<int>(si);
      for (size_t k = di; k < di + len; ++k) {
        dst[k].index += shift;
        (*slot_pos)[dst[k].sensor_id] = static_cast<int>(k);
      }
    }
    si = src_end;
    di += len;
  };
  size_t ii = 0;  // inserts cursor
  size_t ri = 0;  // removes cursor
  // Events ascend by sensor id, and the old array is sorted by sensor id,
  // so event positions ascend too: removals resolve their position through
  // slot_pos, insertions land before the first larger id.
  while (ii < inserts.size() || ri < removes.size()) {
    const bool take_insert =
        ri >= removes.size() ||
        (ii < inserts.size() && inserts[ii] < removes[ri]);
    if (take_insert) {
      const int id = inserts[ii++];
      copy_run(MemberInsertPosition(*slot_pos, id, old_size));
      SlotSensor& ss = dst[di];
      ss.index = static_cast<int>(di);
      ss.sensor_id = id;
      fill(ss, id);
      if (merge_slabs) slab_fill(*slab_scratch, di, ss, id);
      (*slot_pos)[id] = static_cast<int>(di);
      ++di;
    } else {
      const int id = removes[ri++];
      copy_run(static_cast<size_t>((*slot_pos)[id]));
      (*slot_pos)[id] = -1;
      ++si;  // skip the removed element
    }
  }
  copy_run(old_size);
  scratch->resize(di);
  if (merge_slabs) {
    slab_scratch->Resize(di);
    std::swap(*slabs, *slab_scratch);
  }
  std::swap(*members, *scratch);
}

/// Cross-buffer variant for pipelined double-buffered serving
/// (ServingConfig::pipeline == 2): applies the same sorted event walk as
/// MergeSortedMembership, but reads an immutable source member array /
/// slab set / slot_pos map (the *front* buffer, which a concurrent
/// selection pass may be reading) and writes a fully rebuilt destination
/// (the *back* buffer). `dst_slot_pos` is reset to -1 and repopulated for
/// every surviving member — the back buffer's map is two slots stale, so
/// entries for ids removed in earlier slots cannot be trusted and an
/// incremental fixup would leave them dangling. The event walk, fill
/// order, and insert-position rule are byte-for-byte the in-place
/// merge's, so front-to-back and in-place produce identical member
/// arrays.
template <typename FillFn, typename SlabFillFn>
void MergeSortedMembershipInto(const std::vector<SlotSensor>& src,
                               const SlotSlabs& src_slabs,
                               const std::vector<int>& src_slot_pos,
                               std::vector<SlotSensor>* dst,
                               SlotSlabs* dst_slabs,
                               std::vector<int>* dst_slot_pos,
                               const std::vector<int>& inserts,
                               const std::vector<int>& removes, FillFn&& fill,
                               SlabFillFn&& slab_fill) {
  const size_t old_size = src.size();
  dst->resize(old_size + inserts.size());
  dst_slabs->Resize(old_size + inserts.size());
  dst_slot_pos->assign(src_slot_pos.size(), -1);
  const SlotSensor* sp = src.data();
  SlotSensor* dp = dst->data();
  size_t si = 0;
  size_t di = 0;
  const auto copy_column = [](std::vector<double>& to,
                              const std::vector<double>& from, size_t di_,
                              size_t si_, size_t len) {
    std::memcpy(to.data() + di_, from.data() + si_, len * sizeof(double));
  };
  const auto copy_run = [&](size_t src_end) {
    const size_t len = src_end - si;
    if (len == 0) return;
    std::memcpy(dp + di, sp + si, len * sizeof(SlotSensor));
    copy_column(dst_slabs->x, src_slabs.x, di, si, len);
    copy_column(dst_slabs->y, src_slabs.y, di, si, len);
    copy_column(dst_slabs->cost, src_slabs.cost, di, si, len);
    copy_column(dst_slabs->inaccuracy, src_slabs.inaccuracy, di, si, len);
    copy_column(dst_slabs->trust, src_slabs.trust, di, si, len);
    copy_column(dst_slabs->privacy_mult, src_slabs.privacy_mult, di, si, len);
    copy_column(dst_slabs->energy, src_slabs.energy, di, si, len);
    const int shift = static_cast<int>(di) - static_cast<int>(si);
    for (size_t k = di; k < di + len; ++k) {
      if (shift != 0) dp[k].index += shift;
      (*dst_slot_pos)[dp[k].sensor_id] = static_cast<int>(k);
    }
    si = src_end;
    di += len;
  };
  size_t ii = 0;
  size_t ri = 0;
  while (ii < inserts.size() || ri < removes.size()) {
    const bool take_insert =
        ri >= removes.size() ||
        (ii < inserts.size() && inserts[ii] < removes[ri]);
    if (take_insert) {
      const int id = inserts[ii++];
      copy_run(MemberInsertPosition(src_slot_pos, id, old_size));
      SlotSensor& ss = dp[di];
      ss.index = static_cast<int>(di);
      ss.sensor_id = id;
      fill(ss, id);
      slab_fill(*dst_slabs, di, ss, id);
      (*dst_slot_pos)[id] = static_cast<int>(di);
      ++di;
    } else {
      const int id = removes[ri++];
      copy_run(static_cast<size_t>(src_slot_pos[id]));
      ++si;  // skip the removed element; dst_slot_pos already holds -1
    }
  }
  copy_run(old_size);
  dst->resize(di);
  dst_slabs->Resize(di);
}

/// Legacy slab-free merge (kept for callers whose contexts do not carry
/// the SoA columns).
template <typename FillFn>
void MergeSortedMembership(std::vector<SlotSensor>* members,
                           std::vector<SlotSensor>* scratch,
                           std::vector<int>* slot_pos,
                           const std::vector<int>& inserts,
                           const std::vector<int>& removes, FillFn&& fill) {
  MergeSortedMembership(members, scratch, slot_pos, inserts, removes,
                        static_cast<FillFn&&>(fill), nullptr, nullptr,
                        [](SlotSlabs&, size_t, const SlotSensor&, int) {});
}

}  // namespace psens

#endif  // PSENS_ENGINE_MEMBERSHIP_MERGE_H_
