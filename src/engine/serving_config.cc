#include "engine/serving_config.h"

#include <cmath>

namespace psens {

std::string ServingConfig::Validate() const {
  if (!(dmax > 0.0)) return "dmax must be positive";
  if (working_region.x_max < working_region.x_min ||
      working_region.y_max < working_region.y_min) {
    return "working_region is inverted (max < min)";
  }
  if (threads < 0) return "threads must be >= 0 (0 = hardware concurrency)";
  if (shards < 1) return "shards must be >= 1";
  if (shards > 1 && !incremental) {
    return "sharded serving requires incremental mode (shard engines repair "
           "ownership-filtered slot state from deltas; the rebuild reference "
           "path has no ownership filter)";
  }
  if (!shard_schedulers.empty()) {
    if (shards <= 1) {
      return "shard_schedulers requires shards > 1 (per-shard passes need a "
             "shard partition to confine eligibility to)";
    }
    if (static_cast<int>(shard_schedulers.size()) != shards) {
      return "shard_schedulers must name exactly one engine per shard";
    }
    for (GreedyEngine e : shard_schedulers) {
      if (e == GreedyEngine::kSieve) {
        return "shard_schedulers cannot use kSieve (its cross-slot bucket "
               "state has no per-pass home)";
      }
    }
  }
  if (!(approx.epsilon > 0.0)) return "approx.epsilon must be positive";
  if (approx.min_sample < 1) return "approx.min_sample must be >= 1";
  if (approx.sample_hint < 0) return "approx.sample_hint must be >= 0";
  if (index_auto_threshold < 0) return "index_auto_threshold must be >= 0";
  if (pipeline < 0) return "pipeline must be >= 0";
  if (pipeline > 2) {
    return "pipeline depth > 2 would reorder cross-slot feedback (slot t+2's "
           "announcements would freeze before slot t's readings land); only "
           "0/1 (sequential) and 2 (double-buffered) are supported";
  }
  if (!std::isfinite(slo_ms) || slo_ms < 0.0) {
    return "slo_ms must be finite and >= 0 (0 disables adaptive scheduling)";
  }
  if (pipeline == 2 && record_readings && !incremental) {
    return "pipeline == 2 with record_readings requires incremental mode "
           "(the rebuild path re-announces every sensor in the early phase, "
           "before the overlapped slot's readings commit)";
  }
  return std::string();
}

}  // namespace psens
