#ifndef PSENS_ENGINE_SERVING_CONFIG_H_
#define PSENS_ENGINE_SERVING_CONFIG_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/geometry.h"
#include "core/greedy.h"
#include "core/slot.h"

namespace psens {

/// The one configuration record for the serving stack — the knobs that
/// used to be scattered over `EngineConfig`, `SlotServer::Options`,
/// `ClosedLoopConfig`, and ad-hoc bench fields now live here, so a
/// serving run (live closed loop, trace replay, or bench) is described
/// by exactly one validated value. `AcquisitionEngine`, `ShardRouter`,
/// and the `MakeServingEngine` factory all consume it; `shards` is what
/// turns the config into a sharded deployment without a new call site.
///
/// Every knob preserves the bit-identical-results discipline: for a
/// fixed input stream, `threads`, `index_policy`/`index_auto_threshold`,
/// `incremental`, and `shards` change wall-clock only — selections,
/// payments, and valuation-call counts are bitwise invariant
/// (tests/streaming_equivalence_test.cc, tests/shard_invariance_test.cc).
struct ServingConfig {
  /// Working region filtering slot membership (same role as the
  /// `working_region` argument of BuildSlotContext).
  Rect working_region;
  double dmax = 5.0;
  /// Selection engine the serving loop runs each slot (SlotServer /
  /// ServingEngine::Select). kSieve carries cross-slot bucket state.
  GreedyEngine scheduler = GreedyEngine::kLazy;
  SlotIndexPolicy index_policy = SlotIndexPolicy::kAuto;
  int index_auto_threshold = kSlotIndexAutoThreshold;
  /// true: repair the slot context and spatial index from deltas (O(churn)
  /// per slot). false: reference mode — BeginSlot rebuilds both from the
  /// full registry exactly like the pre-engine batch loops. Both modes
  /// produce bit-identical slot contexts, selections, and payments
  /// (tests/streaming_equivalence_test.cc). Sharded serving (shards > 1)
  /// requires incremental mode — Validate() rejects the combination.
  bool incremental = true;
  /// Worker threads. Unsharded: intra-slot parallel selection workers
  /// (BeginSlot attaches an engine-owned ThreadPool to SlotContext::pool,
  /// which the greedy engines use to shard each round's valuation batch).
  /// Sharded: the same pool additionally fans per-shard slot turnover out
  /// across the shard engines. 1 (default) = serial, no pool; 0 =
  /// hardware concurrency; N > 1 = that many workers. Selections,
  /// payments, and ValuationCalls() are bit-identical for every value —
  /// the knob only buys wall-clock (bench/fig12_streaming --threads,
  /// bench/fig15_shard_sweep --shards).
  int threads = 1;
  /// Number of geo-partitioned AcquisitionEngine shards behind the
  /// serving API. 1 (default) serves from a single engine; N > 1 makes
  /// MakeServingEngine build a ShardRouter that partitions the registry
  /// across N shard engines (src/shard/shard_router.h) with bit-identical
  /// outcomes for any value.
  int shards = 1;
  /// Heterogeneous per-shard scheduling. Empty (default): `scheduler`
  /// runs once globally over the merged context — the bit-identical-to-
  /// unsharded path. Size == `shards` (requires shards > 1): Select runs
  /// one sequential pass per shard in ascending shard order, pass s using
  /// shard_schedulers[s] with selection *eligibility* confined to shard
  /// s's members (SlotContext::eligible); valuations, payments, and
  /// cross-shard marginal visibility stay global, so earlier passes'
  /// selections shrink later passes' marginals exactly as one global run
  /// would. The outcome is NOT the unrestricted global outcome — the
  /// contract is instead self-consistency: bit-identical selections,
  /// payments, and valuation calls for any thread count and repeat run
  /// (tests/shard_invariance_test.cc pins a merged-outcome digest).
  /// kSieve entries are rejected by Validate(): the sieve's cross-slot
  /// bucket state has no per-pass home.
  std::vector<GreedyEngine> shard_schedulers;
  /// Approximate-scheduler knobs, stamped onto every slot context.
  /// BeginSlot derives the per-slot RNG stream from (approx.seed, time)
  /// unless approx.slot_seed pins it, so an approximate selection re-run
  /// for the same slot — incremental or rebuild mode, any thread or shard
  /// count — is reproducible (core/stochastic_greedy.h).
  ApproxParams approx;
  /// When non-empty, the serving engine records its input stream — every
  /// ApplyDelta/ApplyTrace change and every BeginSlot with its stamped
  /// per-slot approx seed — to a binary trace at this path
  /// (src/trace/trace_format.h). A ShardRouter records at the router
  /// (pre-split) level, so a trace recorded sharded replays under any
  /// shard count. Recording never alters scheduling.
  std::string trace_path;
  /// Feed purchased readings back via RecordSlotReadings — the closed
  /// loop's cross-slot energy/privacy feedback. Replay uses the same
  /// default so the feedback path is replayed too.
  bool record_readings = true;
  /// Pipelined slot execution depth. 0 or 1 (default 0): sequential —
  /// each slot's turnover (ApplyDelta + BeginSlot) completes before its
  /// selection starts. 2: double-buffered — the driver stages slot t+1's
  /// delta ingestion, membership repair, and dynamic-index maintenance
  /// on a work-stealing task graph (src/common/task_graph.h) while slot
  /// t's selection runs, committing at a deterministic barrier
  /// (StageNextSlot / ActivateStagedSlot). Outcomes are bit-identical to
  /// sequential for every scheduler, thread count, and shard count; the
  /// knob only buys sustained slots/sec (bench/fig17_pipeline_throughput).
  /// Depths > 2 are rejected by Validate(): slot t+2's announcements
  /// would have to freeze before slot t's readings land, reordering the
  /// cross-slot feedback the paper's per-slot cycle defines. Pipelined
  /// rebuild mode (incremental == false) with record_readings is rejected
  /// for the same reason — a full rebuild re-announces every sensor in
  /// the early phase, before the overlapped slot's readings commit.
  int pipeline = 0;
  /// Per-slot latency budget in milliseconds for the adaptive scheduler
  /// (src/engine/adaptive_policy.h). 0 (default): static scheduling —
  /// `scheduler` (or `shard_schedulers`) runs every slot exactly as
  /// configured. > 0: ServingEngine::Select consults an AdaptivePolicy
  /// each slot, treating `scheduler` as the quality *ceiling* and
  /// degrading down the ladder (lazy -> stochastic -> sieve) when the
  /// policy's per-engine cost model predicts the ceiling would blow the
  /// remaining budget (slo_ms minus the slot's measured turnover time).
  /// Chosen engines are recorded per slot in version-2 traces, so an
  /// adaptive run — whose live choices depend on wall-clock observations —
  /// still replays bit-identically (the replayer pins the recorded
  /// choices via PinNextSelectEngines). Under shard_schedulers the policy
  /// picks one degradation level per slot and each pass runs the
  /// min-quality of its configured engine and that level (sieve excluded
  /// from passes, as always).
  double slo_ms = 0.0;

  // Builder-style setters, so call sites can assemble a config in one
  // expression (`ServingConfig().WithRegion(field).WithShards(4)`).
  ServingConfig& WithRegion(const Rect& region) {
    working_region = region;
    return *this;
  }
  ServingConfig& WithDmax(double d) {
    dmax = d;
    return *this;
  }
  ServingConfig& WithScheduler(GreedyEngine engine) {
    scheduler = engine;
    return *this;
  }
  ServingConfig& WithIndexPolicy(SlotIndexPolicy policy) {
    index_policy = policy;
    return *this;
  }
  ServingConfig& WithIndexAutoThreshold(int threshold) {
    index_auto_threshold = threshold;
    return *this;
  }
  ServingConfig& WithIncremental(bool on) {
    incremental = on;
    return *this;
  }
  ServingConfig& WithThreads(int n) {
    threads = n;
    return *this;
  }
  ServingConfig& WithShards(int n) {
    shards = n;
    return *this;
  }
  ServingConfig& WithShardSchedulers(std::vector<GreedyEngine> engines) {
    shard_schedulers = std::move(engines);
    return *this;
  }
  ServingConfig& WithApprox(const ApproxParams& params) {
    approx = params;
    return *this;
  }
  ServingConfig& WithEpsilon(double epsilon) {
    approx.epsilon = epsilon;
    return *this;
  }
  ServingConfig& WithApproxSeed(uint64_t seed) {
    approx.seed = seed;
    return *this;
  }
  ServingConfig& WithTracePath(std::string path) {
    trace_path = std::move(path);
    return *this;
  }
  ServingConfig& WithRecordReadings(bool on) {
    record_readings = on;
    return *this;
  }
  ServingConfig& WithPipeline(int depth) {
    pipeline = depth;
    return *this;
  }
  ServingConfig& WithSloMs(double ms) {
    slo_ms = ms;
    return *this;
  }

  /// Empty string when the config is serviceable; otherwise a
  /// human-readable description of the first problem found.
  /// MakeServingEngine refuses (asserts in debug, clamps nothing) on a
  /// non-empty result, so configuration mistakes surface at construction
  /// instead of as silent mis-serving.
  std::string Validate() const;
};

}  // namespace psens

#endif  // PSENS_ENGINE_SERVING_CONFIG_H_
