#include "engine/serving_engine.h"

#include <cassert>
#include <chrono>
#include <utility>

#include "core/sieve_streaming.h"
#include "engine/adaptive_policy.h"
#include "shard/shard_map.h"
#include "trace/trace_writer.h"

namespace psens {
namespace {

// Quality rank for degrade composition: lazy and eager are quality-
// identical (same selections), stochastic trades a bounded utility gap,
// the sieve the largest.
int QualityRank(GreedyEngine e) {
  switch (e) {
    case GreedyEngine::kLazy:
    case GreedyEngine::kEager:
      return 2;
    case GreedyEngine::kStochastic:
      return 1;
    case GreedyEngine::kSieve:
      return 0;
  }
  return 0;
}

// The lower-quality of a configured pass engine and the policy's chosen
// degradation level; ties keep the configured engine (so a lazy pass
// stays lazy, not eager, when the level is eager-grade).
GreedyEngine MinQuality(GreedyEngine configured, GreedyEngine level) {
  return QualityRank(level) < QualityRank(configured) ? level : configured;
}

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

ServingEngine::ServingEngine() = default;
ServingEngine::~ServingEngine() = default;

void ServingEngine::PinNextSelectEngines(std::vector<GreedyEngine> engines) {
  pinned_engines_ = std::move(engines);
  pinned_ = !pinned_engines_.empty();
}

SelectionResult ServingEngine::Select(const std::vector<MultiQuery*>& queries,
                                      const SlotContext& slot,
                                      const SensorDelta& delta) {
  const ServingConfig& cfg = config();
  const bool shard_mode = !cfg.shard_schedulers.empty() && shard_count() > 1;

  // Replay pinning overrides everything: the recorded run already made
  // the (wall-clock-dependent) choice, and re-deriving it would diverge.
  if (pinned_) {
    pinned_ = false;
    std::vector<GreedyEngine> engines = std::move(pinned_engines_);
    pinned_engines_.clear();
    SelectionResult r;
    if (shard_mode) {
      if (static_cast<int>(engines.size()) != shard_count()) {
        // A single-mode recording replayed sharded (or a shard-count
        // change): expand the recorded level across the configured
        // passes, sieve clamped to stochastic as always.
        const GreedyEngine level = engines[0] == GreedyEngine::kSieve
                                       ? GreedyEngine::kStochastic
                                       : engines[0];
        engines.assign(cfg.shard_schedulers.begin(),
                       cfg.shard_schedulers.end());
        for (GreedyEngine& e : engines) e = MinQuality(e, level);
      }
      r = SelectShardPasses(queries, slot, &engines);
    } else {
      r = SelectSingle(queries, slot, delta, engines[0]);
      engines.resize(1);
    }
    last_select_engines_ = std::move(engines);
    if (TraceWriter* writer = trace_writer()) {
      writer->StageEngineChoices(last_select_engines_);
    }
    return r;
  }

  // Adaptive path (ServingConfig::slo_ms > 0): choose, run self-timed,
  // feed the realized latency back, and record the choice.
  if (cfg.slo_ms > 0.0) {
    if (policy_ == nullptr) {
      // Sharded heterogeneous mode degrades relative to each pass's
      // configured engine, so the policy models the degradation *level*
      // with a full ladder (lazy ceiling).
      policy_ = std::make_unique<AdaptivePolicy>(
          cfg.slo_ms, shard_mode ? GreedyEngine::kLazy : cfg.scheduler);
    }
    AdaptivePolicy::SlotFeatures features;
    features.members = static_cast<int>(slot.sensors.size());
    features.churn = static_cast<int>(
        delta.arrivals.size() + delta.departures.size() + delta.moves.size() +
        delta.price_changes.size());
    features.queries = static_cast<int>(queries.size());
    const GreedyEngine level = policy_->Choose(features, last_turnover_ms_);

    const auto start = std::chrono::steady_clock::now();
    SelectionResult r;
    if (shard_mode) {
      // One degradation level per slot, composed per pass; the sieve has
      // no per-pass home (cross-slot bucket state), so passes floor at
      // stochastic.
      const GreedyEngine pass_level = level == GreedyEngine::kSieve
                                          ? GreedyEngine::kStochastic
                                          : level;
      last_select_engines_.assign(cfg.shard_schedulers.begin(),
                                  cfg.shard_schedulers.end());
      for (GreedyEngine& e : last_select_engines_) {
        e = MinQuality(e, pass_level);
      }
      r = SelectShardPasses(queries, slot, &last_select_engines_);
    } else {
      last_select_engines_.assign(1, level);
      r = SelectSingle(queries, slot, delta, level);
    }
    policy_->Observe(level, features,
                     MsBetween(start, std::chrono::steady_clock::now()));
    if (TraceWriter* writer = trace_writer()) {
      writer->StageEngineChoices(last_select_engines_);
    }
    return r;
  }

  // Static paths — exactly the pre-adaptive behavior.
  if (shard_mode) {
    last_select_engines_ = cfg.shard_schedulers;
    return SelectShardPasses(queries, slot, nullptr);
  }
  last_select_engines_.assign(1, cfg.scheduler);
  return SelectSingle(queries, slot, delta, cfg.scheduler);
}

SelectionResult ServingEngine::SelectSingle(
    const std::vector<MultiQuery*>& queries, const SlotContext& slot,
    const SensorDelta& delta, GreedyEngine engine) {
  if (engine == GreedyEngine::kSieve) {
    // Re-entering the sieve after another engine's slots: the carried
    // buckets missed those slots' deltas, so the state is stale — rebuild
    // (SelectDelta falls back to a full re-stream). Keyed purely on the
    // choice sequence, so pinned replay choices reproduce the same
    // resets. A static all-sieve run never transitions and keeps its
    // cross-slot state exactly as before.
    const bool stale =
        has_last_single_ && last_single_engine_ != GreedyEngine::kSieve;
    if (sieve_ == nullptr || stale) {
      sieve_ = std::make_unique<SieveStreamingScheduler>(config().approx);
    }
    has_last_single_ = true;
    last_single_engine_ = engine;
    return sieve_->SelectDelta(queries, slot, delta);
  }
  has_last_single_ = true;
  last_single_engine_ = engine;
  return GreedySensorSelection(queries, slot, nullptr, engine);
}

SelectionResult ServingEngine::SelectShardPasses(
    const std::vector<MultiQuery*>& queries, const SlotContext& slot,
    const std::vector<GreedyEngine>* engines) {
  const ShardMap* map = shard_map_ptr();
  assert(map != nullptr && "shard passes need the router's shard map");
  const std::vector<GreedyEngine>& pass_engines =
      engines != nullptr ? *engines : config().shard_schedulers;
  const int passes = shard_count();
  assert(static_cast<int>(pass_engines.size()) == passes);
  const size_t n = slot.sensors.size();
  const int64_t calls_before = TotalValuationCalls(queries);

  // One context copy for the whole sequence; only the eligibility mask
  // changes between passes. The copy shares the slot's index, pool, and
  // arena — pass-local scratch keeps drawing from the slot arena, which
  // the next BeginSlot resets as usual.
  SlotContext pass = slot;
  std::vector<char> mask(n, 0);
  pass.eligible = &mask;

  SelectionResult merged;
  for (int s = 0; s < passes; ++s) {
    for (size_t i = 0; i < n; ++i) {
      mask[i] = map->ShardOf(slot.sensors[i].location) == s ? 1 : 0;
    }
    // Query selection state carries across passes on purpose: pass s sees
    // every earlier pass's commitments, so its marginals shrink exactly as
    // one global run's would. A sensor belongs to exactly one shard, so no
    // sensor is selectable in two passes.
    SelectionResult r =
        GreedySensorSelection(queries, pass, nullptr, pass_engines[s]);
    merged.selected_sensors.insert(merged.selected_sensors.end(),
                                   r.selected_sensors.begin(),
                                   r.selected_sensors.end());
    merged.total_cost += r.total_cost;
  }
  // Per-pass total_value is cumulative (each pass sums CurrentValue over
  // the shared query state), so the merged value is computed once at the
  // end, not summed across passes.
  for (const MultiQuery* q : queries) merged.total_value += q->CurrentValue();
  merged.valuation_calls = TotalValuationCalls(queries) - calls_before;
  return merged;
}

}  // namespace psens
