#include "engine/serving_engine.h"

#include <cassert>

#include "core/sieve_streaming.h"
#include "shard/shard_map.h"

namespace psens {

ServingEngine::ServingEngine() = default;
ServingEngine::~ServingEngine() = default;

SelectionResult ServingEngine::Select(const std::vector<MultiQuery*>& queries,
                                      const SlotContext& slot,
                                      const SensorDelta& delta) {
  if (!config().shard_schedulers.empty() && shard_count() > 1) {
    return SelectShardPasses(queries, slot);
  }
  if (config().scheduler == GreedyEngine::kSieve) {
    if (sieve_ == nullptr) {
      sieve_ = std::make_unique<SieveStreamingScheduler>(config().approx);
    }
    return sieve_->SelectDelta(queries, slot, delta);
  }
  return GreedySensorSelection(queries, slot, nullptr, config().scheduler);
}

SelectionResult ServingEngine::SelectShardPasses(
    const std::vector<MultiQuery*>& queries, const SlotContext& slot) {
  const ShardMap* map = shard_map_ptr();
  assert(map != nullptr && "shard passes need the router's shard map");
  const int passes = shard_count();
  const size_t n = slot.sensors.size();
  const int64_t calls_before = TotalValuationCalls(queries);

  // One context copy for the whole sequence; only the eligibility mask
  // changes between passes. The copy shares the slot's index, pool, and
  // arena — pass-local scratch keeps drawing from the slot arena, which
  // the next BeginSlot resets as usual.
  SlotContext pass = slot;
  std::vector<char> mask(n, 0);
  pass.eligible = &mask;

  SelectionResult merged;
  for (int s = 0; s < passes; ++s) {
    for (size_t i = 0; i < n; ++i) {
      mask[i] = map->ShardOf(slot.sensors[i].location) == s ? 1 : 0;
    }
    // Query selection state carries across passes on purpose: pass s sees
    // every earlier pass's commitments, so its marginals shrink exactly as
    // one global run's would. A sensor belongs to exactly one shard, so no
    // sensor is selectable in two passes.
    SelectionResult r = GreedySensorSelection(queries, pass, nullptr,
                                              config().shard_schedulers[s]);
    merged.selected_sensors.insert(merged.selected_sensors.end(),
                                   r.selected_sensors.begin(),
                                   r.selected_sensors.end());
    merged.total_cost += r.total_cost;
  }
  // Per-pass total_value is cumulative (each pass sums CurrentValue over
  // the shared query state), so the merged value is computed once at the
  // end, not summed across passes.
  for (const MultiQuery* q : queries) merged.total_value += q->CurrentValue();
  merged.valuation_calls = TotalValuationCalls(queries) - calls_before;
  return merged;
}

}  // namespace psens
