#include "engine/serving_engine.h"

#include "core/sieve_streaming.h"

namespace psens {

ServingEngine::ServingEngine() = default;
ServingEngine::~ServingEngine() = default;

SelectionResult ServingEngine::Select(const std::vector<MultiQuery*>& queries,
                                      const SlotContext& slot,
                                      const SensorDelta& delta) {
  if (config().scheduler == GreedyEngine::kSieve) {
    if (sieve_ == nullptr) {
      sieve_ = std::make_unique<SieveStreamingScheduler>(config().approx);
    }
    return sieve_->SelectDelta(queries, slot, delta);
  }
  return GreedySensorSelection(queries, slot, nullptr, config().scheduler);
}

}  // namespace psens
