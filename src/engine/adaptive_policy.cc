#include "engine/adaptive_policy.h"

#include <algorithm>

namespace psens {
namespace {

// Quality ladder from a given ceiling, best first. Lazy and eager are
// quality-identical, so neither appears below the other — a ceiling of
// either steps straight to stochastic.
int Ladder(GreedyEngine ceiling, GreedyEngine out[4]) {
  int n = 0;
  switch (ceiling) {
    case GreedyEngine::kLazy:
    case GreedyEngine::kEager:
      out[n++] = ceiling;
      out[n++] = GreedyEngine::kStochastic;
      out[n++] = GreedyEngine::kSieve;
      break;
    case GreedyEngine::kStochastic:
      out[n++] = GreedyEngine::kStochastic;
      out[n++] = GreedyEngine::kSieve;
      break;
    case GreedyEngine::kSieve:
      out[n++] = GreedyEngine::kSieve;
      break;
  }
  return n;
}

}  // namespace

AdaptivePolicy::AdaptivePolicy(double slo_ms, GreedyEngine ceiling)
    : slo_ms_(slo_ms), ceiling_(ceiling) {}

double AdaptivePolicy::WorkUnits(GreedyEngine engine,
                                 const SlotFeatures& features) {
  const double q = std::max(1, features.queries);
  if (engine == GreedyEngine::kSieve) {
    // Delta path: bucket replays touch carried members + arrivals, both
    // bounded by churn, never the population.
    return std::max(1.0, (features.churn + 1) * q);
  }
  return std::max(1, features.members) * q;
}

GreedyEngine AdaptivePolicy::Choose(const SlotFeatures& features,
                                    double turnover_ms) const {
  GreedyEngine ladder[4];
  const int n = Ladder(ceiling_, ladder);
  const double budget = std::max(0.0, slo_ms_ - turnover_ms);
  for (int i = 0; i < n; ++i) {
    const GreedyEngine e = ladder[i];
    // Optimistic first trial: an engine with no coefficient yet runs once
    // so the model learns it; mispredicting "free" forever would pin the
    // policy at the ceiling.
    if (!observed(e)) return e;
    if (PredictMs(e, features) <= kSafety * budget) return e;
  }
  // Nothing fits: run the floor anyway. The SLO degrades quality, it
  // never skips a slot.
  return ladder[n - 1];
}

void AdaptivePolicy::Observe(GreedyEngine engine, const SlotFeatures& features,
                             double selection_ms) {
  const int idx = static_cast<int>(engine);
  if (idx < 0 || idx >= kNumEngines) return;
  if (selection_ms < 0.0) selection_ms = 0.0;
  const double per_unit = selection_ms / WorkUnits(engine, features);
  if (!seen_[idx]) {
    ms_per_unit_[idx] = per_unit;
    seen_[idx] = true;
    return;
  }
  ms_per_unit_[idx] = (1.0 - kAlpha) * ms_per_unit_[idx] + kAlpha * per_unit;
}

double AdaptivePolicy::PredictMs(GreedyEngine engine,
                                 const SlotFeatures& features) const {
  const int idx = static_cast<int>(engine);
  if (idx < 0 || idx >= kNumEngines || !seen_[idx]) return 0.0;
  return ms_per_unit_[idx] * WorkUnits(engine, features);
}

bool AdaptivePolicy::observed(GreedyEngine engine) const {
  const int idx = static_cast<int>(engine);
  return idx >= 0 && idx < kNumEngines && seen_[idx];
}

}  // namespace psens
