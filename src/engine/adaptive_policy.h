#ifndef PSENS_ENGINE_ADAPTIVE_POLICY_H_
#define PSENS_ENGINE_ADAPTIVE_POLICY_H_

#include "core/greedy.h"

namespace psens {

/// Latency-SLO scheduler selection (ServingConfig::slo_ms). Each slot,
/// ServingEngine::Select asks the policy which engine to run given the
/// slot's features and how much of the budget the slot's turnover
/// already spent; after the selection runs, Observe() feeds the realized
/// latency back into a per-engine online cost model.
///
/// Cost model: one EWMA coefficient per engine — milliseconds per "work
/// unit", where an engine's work units scale the way its algorithm does
/// (full-sweep engines with members x queries, the sieve with
/// churn x queries; see WorkUnits). PredictMs is coefficient x units, so
/// a single observation at one slot size extrapolates to other sizes and
/// the model tracks drift (thermal, contention) through the EWMA.
///
/// Choose walks the quality ladder downward from the configured ceiling
///
///   lazy/eager -> stochastic -> sieve
///
/// and returns the first engine whose predicted cost fits inside a
/// safety-factored share of the remaining budget (slo_ms - turnover_ms).
/// An engine with no observations yet is chosen optimistically the first
/// time it is reached — one trial seeds its coefficient. When nothing
/// fits, the ladder's floor (the sieve) runs anyway: the SLO degrades
/// quality, never correctness. Recovery is symmetric — when a spike
/// passes, the predicted cost of higher-quality engines falls back under
/// budget and Choose climbs the ladder again.
///
/// Determinism: Choose is a pure function of (features, turnover, the
/// observation history). Live runs feed wall-clock observations, so live
/// choices are machine-dependent — which is exactly why the chosen
/// engines are recorded per slot in version-2 traces and pinned on
/// replay (ServingEngine::PinNextSelectEngines) instead of re-derived.
class AdaptivePolicy {
 public:
  /// Slot features the cost model predicts from.
  struct SlotFeatures {
    int members = 0;  ///< slot context size (announced, in-region sensors)
    int churn = 0;    ///< delta entries absorbed this slot
    int queries = 0;  ///< bound queries in the slot's batch
  };

  /// `ceiling` is the best engine the policy may pick (the configured
  /// ServingConfig::scheduler); the ladder runs from it down to kSieve.
  AdaptivePolicy(double slo_ms, GreedyEngine ceiling);

  /// Picks the engine for the next Select. `turnover_ms` is the measured
  /// ApplyDelta+BeginSlot time of this slot (0 when unknown).
  GreedyEngine Choose(const SlotFeatures& features, double turnover_ms) const;

  /// Feeds one realized selection latency back into `engine`'s
  /// coefficient (EWMA, alpha = kAlpha).
  void Observe(GreedyEngine engine, const SlotFeatures& features,
               double selection_ms);

  /// Predicted selection cost of `engine` on a slot shaped like
  /// `features`. 0 until the engine has been observed once.
  double PredictMs(GreedyEngine engine, const SlotFeatures& features) const;

  bool observed(GreedyEngine engine) const;
  double slo_ms() const { return slo_ms_; }
  GreedyEngine ceiling() const { return ceiling_; }

  /// The feature->work mapping per engine: full-sweep engines (eager,
  /// lazy, stochastic) scale with members x queries; the sieve's delta
  /// path scales with (churn + 1) x queries, independent of population.
  static double WorkUnits(GreedyEngine engine, const SlotFeatures& features);

  /// Fraction of the remaining budget a prediction must fit inside —
  /// headroom for prediction error before a deadline is actually missed.
  static constexpr double kSafety = 0.9;
  /// EWMA weight of the newest observation.
  static constexpr double kAlpha = 0.4;

 private:
  static constexpr int kNumEngines = 4;

  double slo_ms_;
  GreedyEngine ceiling_;
  double ms_per_unit_[kNumEngines] = {0.0, 0.0, 0.0, 0.0};
  bool seen_[kNumEngines] = {false, false, false, false};
};

}  // namespace psens

#endif  // PSENS_ENGINE_ADAPTIVE_POLICY_H_
