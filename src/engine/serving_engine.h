#ifndef PSENS_ENGINE_SERVING_ENGINE_H_
#define PSENS_ENGINE_SERVING_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/greedy.h"
#include "core/sensor.h"
#include "core/sensor_delta.h"
#include "core/slot.h"
#include "engine/serving_config.h"
#include "mobility/trace.h"

namespace psens {

class AdaptivePolicy;
class SieveStreamingScheduler;
class TraceWriter;
struct ShardMap;

/// The serving API every engine-shaped thing implements — the single
/// AcquisitionEngine and the sharded ShardRouter — and the only surface
/// the serving layer (SlotServer, the closed loop, the trace replayer,
/// the fig benches) programs against. One slot's lifecycle:
///
///   engine->ApplyDelta(delta);                   // or ApplyTrace
///   const SlotContext& slot = engine->BeginSlot(t);
///   ... bind the slot's queries against `slot` ...
///   SelectionResult r = engine->Select(queries, slot, delta);
///   engine->RecordSlotReadings(r.selected_sensors, t);
///
/// Select runs the configured scheduler (ServingConfig::scheduler) and
/// commits Algorithm 1's proportional payments through
/// CommitWithProportionalPayments; for GreedyEngine::kSieve it owns the
/// cross-slot sieve bucket state, which is part of the run's determinism
/// and therefore lives with the engine, not with any one serving loop.
///
/// Contract: for a fixed input stream (registry, deltas, query batches,
/// per-slot seeds), every implementation produces bit-identical
/// selections, payments, and valuation-call counts — regardless of
/// thread count, index policy, incremental vs rebuild mode, or shard
/// count. SameOutcome() (trace/slot_server.h) is the comparator; the
/// streaming-equivalence, shard-invariance, and replay differential
/// suites enforce it.
class ServingEngine {
 public:
  ServingEngine();  // out-of-line: sieve_'s type is incomplete here
  virtual ~ServingEngine();

  /// Streams one mobility-trace slot in as a delta: only sensors whose
  /// position or presence actually changed are touched.
  virtual void ApplyTrace(const Trace& trace, int slot) = 0;

  /// Applies a churn delta (arrivals/departures/moves/price changes).
  virtual void ApplyDelta(const SensorDelta& delta) = 0;

  /// Finalizes announcements for slot `time` and returns the context.
  /// Valid until the next BeginSlot call or engine destruction.
  virtual const SlotContext& BeginSlot(int time) = 0;

  /// Charges one reading each to the given *global sensor ids* at slot
  /// `time` (energy + privacy history), flagging their announcements for
  /// refresh at the next BeginSlot.
  virtual void RecordReadings(const std::vector<int>& sensor_ids,
                              int time) = 0;

  /// Same, addressed by the current context's slot-sensor indices (the
  /// form scheduler results use).
  virtual void RecordSlotReadings(const std::vector<int>& slot_indices,
                                  int time) = 0;

  virtual const std::vector<Sensor>& sensors() const = 0;
  virtual const ServingConfig& config() const = 0;
  /// Name of the live index backend ("dynamic-grid", "kd-buffered",
  /// "sharded", "rebuild" in reference mode, "none" when unindexed).
  virtual const char* IndexBackendName() const = 0;
  /// Number of shard engines behind this serving engine (1 when single).
  virtual int shard_count() const { return 1; }
  /// The geo-partition behind a sharded engine, or null when single.
  /// Select's heterogeneous per-shard passes
  /// (ServingConfig::shard_schedulers) derive each pass's eligibility
  /// mask from it.
  virtual const ShardMap* shard_map_ptr() const { return nullptr; }

  /// Pipelined slot lifecycle (ServingConfig::pipeline == 2). The
  /// driver's slot t sequence becomes
  ///
  ///   ctx = engine->ActivateStagedSlot();        // commit barrier
  ///   engine->StageNextSlot(t + 1, delta_t1);    // overlaps with...
  ///   r = engine->Select(queries_t, ctx, ...);   // ...slot t's selection
  ///   engine->RecordSlotReadings(r.selected_sensors, t);  // deferred
  ///
  /// StageNextSlot journals the delta to the trace (serving thread),
  /// copies it, and launches slot t+1's delta ingestion, membership
  /// repair, and dynamic-index maintenance on the engine's work-stealing
  /// task graph against *back* (double-buffered) slot state the
  /// in-flight selection never reads. ActivateStagedSlot is the
  /// deterministic commit barrier: it joins the staged work (rethrowing
  /// any task error), applies the previous slot's deferred readings
  /// feedback (queued by RecordReadings/RecordSlotReadings, which in
  /// pipelined mode never touch the registry inline), stamps the slot
  /// and flips buffers. Outcomes are bit-identical to the sequential
  /// ApplyDelta + BeginSlot path for every scheduler, thread count, and
  /// shard count. With pipeline < 2 both calls degrade to exactly that
  /// sequential path, so drivers can call them unconditionally.
  virtual void StageNextSlot(int time, const SensorDelta& delta) = 0;
  virtual const SlotContext& ActivateStagedSlot() = 0;

  /// Pins the approx slot seed the *next* BeginSlot stamps, overriding
  /// the (approx.seed, time) derivation for that one slot. The trace
  /// replayer uses this to impose each recorded slot's seed.
  virtual void PinNextSlotSeed(uint64_t slot_seed) = 0;

  /// The live trace recorder, or null when ServingConfig::trace_path is
  /// empty (or the file could not be created). The serving layer stages
  /// each slot's query batch here after BeginSlot.
  virtual TraceWriter* trace_writer() = 0;

  /// Finalizes the trace (patches the slot count, closes the file).
  /// Returns false if recording was off or any write failed.
  virtual bool FinishTrace() = 0;

  /// Runs the configured scheduler over the bound queries and commits
  /// proportional payments. `delta` is the slot's churn delta (the sieve
  /// absorbs it instead of re-streaming the population; the other
  /// schedulers ignore it). Not virtual: selection is global and shared —
  /// sharding lives entirely inside BeginSlot's context assembly.
  ///
  /// With ServingConfig::slo_ms > 0 the scheduler is chosen per slot by
  /// an AdaptivePolicy (the configured scheduler is the quality ceiling),
  /// the realized selection latency is fed back to the policy's cost
  /// model, and the chosen engines are staged onto the slot's trace
  /// record (version-2 traces). A pinned choice (PinNextSelectEngines —
  /// the replay path) overrides both the policy and the static config.
  SelectionResult Select(const std::vector<MultiQuery*>& queries,
                         const SlotContext& slot, const SensorDelta& delta);

  /// Reports the measured ApplyDelta+BeginSlot latency of the slot about
  /// to be selected; the adaptive policy subtracts it from slo_ms to get
  /// Select's remaining budget. SlotServer calls this each slot; callers
  /// that never do simply leave the full SLO as Select's budget.
  void NoteTurnoverMs(double ms) { last_turnover_ms_ = ms; }

  /// Pins the engine choice(s) for the *next* Select call, overriding the
  /// adaptive policy and the static config for that one slot: entry 0 in
  /// single-engine mode, one entry per shard pass under shard_schedulers.
  /// The trace replayer imposes each recorded slot's choices this way, so
  /// an adaptive run replays bit-identically without re-deriving choices
  /// from (machine-dependent) wall-clock observations.
  void PinNextSelectEngines(std::vector<GreedyEngine> engines);

  /// The engines the most recent Select actually ran: one entry in
  /// single-engine mode, one per shard pass otherwise. What fig18 reads
  /// to report the adaptive engine mix.
  const std::vector<GreedyEngine>& last_select_engines() const {
    return last_select_engines_;
  }

 private:
  /// Heterogeneous per-shard selection (ServingConfig::shard_schedulers):
  /// one sequential pass per shard in ascending shard order, each pass
  /// confined by an ownership-derived SlotContext::eligible mask. See the
  /// shard_schedulers field doc for the determinism contract. `engines`,
  /// when non-null, overrides the configured per-pass engine list (the
  /// adaptive/pinned paths; must have shard_count() entries).
  SelectionResult SelectShardPasses(const std::vector<MultiQuery*>& queries,
                                    const SlotContext& slot,
                                    const std::vector<GreedyEngine>* engines);
  /// Runs one engine over the slot, owning the sieve lifecycle: the
  /// cross-slot sieve state is reset when the choice sequence re-enters
  /// kSieve from a different engine (the carried buckets missed the
  /// intervening deltas), a rule that depends only on the choice sequence
  /// so replayed choices reproduce the same resets.
  SelectionResult SelectSingle(const std::vector<MultiQuery*>& queries,
                               const SlotContext& slot,
                               const SensorDelta& delta, GreedyEngine engine);
  /// Cross-slot sieve bucket state (GreedyEngine::kSieve only), built
  /// lazily from config().approx on the first Select.
  std::unique_ptr<SieveStreamingScheduler> sieve_;
  /// Latency-SLO policy (ServingConfig::slo_ms > 0), built lazily.
  std::unique_ptr<AdaptivePolicy> policy_;
  double last_turnover_ms_ = 0.0;
  bool pinned_ = false;
  std::vector<GreedyEngine> pinned_engines_;
  std::vector<GreedyEngine> last_select_engines_;
  bool has_last_single_ = false;
  GreedyEngine last_single_engine_ = GreedyEngine::kLazy;
};

/// Builds the serving engine the config describes: a plain
/// AcquisitionEngine for shards == 1, a ShardRouter over
/// config.shards geo-partitioned engines otherwise. Asserts
/// config.Validate() passes. Defined in src/shard/shard_router.cc (the
/// only translation unit that knows both implementations).
std::unique_ptr<ServingEngine> MakeServingEngine(std::vector<Sensor> sensors,
                                                 const ServingConfig& config);

}  // namespace psens

#endif  // PSENS_ENGINE_SERVING_ENGINE_H_
