#ifndef PSENS_GP_GAUSSIAN_PROCESS_H_
#define PSENS_GP_GAUSSIAN_PROCESS_H_

#include <memory>
#include <vector>

#include "common/geometry.h"
#include "gp/kernel.h"

namespace psens {

/// Gaussian-process model of a spatial phenomenon, used for the region-
/// monitoring valuation (Section 2.3.1). Because the process is Gaussian,
/// the expected reduction in variance of Eq. (6),
///
///   F(A) = Var(X_V) - Integral P(x_A) Var(X_V | X_A = x_A) dx_A,
///
/// does not depend on the observed values x_A, and equals the total prior
/// variance at V minus the total posterior variance given observations at
/// the locations A.
class GaussianProcess {
 public:
  /// `noise_variance` is the observation noise added to the diagonal when
  /// conditioning (also keeps the Cholesky factorization well-posed).
  GaussianProcess(std::shared_ptr<const Kernel> kernel, double noise_variance);

  /// Total prior variance over the target locations `targets`.
  double PriorVariance(const std::vector<Point>& targets) const;

  /// Total posterior variance at `targets` given (noisy) observations at
  /// `observed`. Returns the prior variance when `observed` is empty.
  double PosteriorVariance(const std::vector<Point>& targets,
                           const std::vector<Point>& observed) const;

  /// Expected variance reduction F(A) of Eq. (6): PriorVariance -
  /// PosteriorVariance. Non-negative and monotone in `observed`.
  double VarianceReduction(const std::vector<Point>& targets,
                           const std::vector<Point>& observed) const;

  const Kernel& kernel() const { return *kernel_; }
  double noise_variance() const { return noise_variance_; }

 private:
  std::shared_ptr<const Kernel> kernel_;
  double noise_variance_;
};

/// Convenience: target locations on a grid of unit cells covering `region`
/// with the given `step` (cell centers). Used to evaluate sensing quality
/// of a region-monitoring query over its region.
std::vector<Point> GridTargets(const Rect& region, double step);

}  // namespace psens

#endif  // PSENS_GP_GAUSSIAN_PROCESS_H_
