#include "gp/spatio_temporal.h"

#include <cmath>

#include "la/cholesky.h"
#include "la/matrix.h"

namespace psens {

double SpatioTemporalKernel::operator()(const STPoint& a, const STPoint& b) const {
  const double dt = a.time - b.time;
  const double temporal =
      std::exp(-dt * dt / (2.0 * temporal_length_ * temporal_length_));
  return (*spatial_)(a.location, b.location) * temporal;
}

double VarianceReductionST(const SpatioTemporalKernel& kernel, double noise_variance,
                           const std::vector<STPoint>& targets,
                           const std::vector<STPoint>& observed) {
  if (observed.empty() || targets.empty()) return 0.0;
  const size_t m = observed.size();
  Matrix kaa(m, m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) kaa(i, j) = kernel(observed[i], observed[j]);
    kaa(i, i) += noise_variance;
  }
  Cholesky chol(kaa, 1e-10);
  if (!chol.Ok()) return 0.0;
  double total = 0.0;
  std::vector<double> kva(m);
  for (const STPoint& v : targets) {
    for (size_t j = 0; j < m; ++j) kva[j] = kernel(v, observed[j]);
    const std::vector<double> z = chol.SolveLower(kva);
    double reduction = 0.0;
    for (double zi : z) reduction += zi * zi;
    if (reduction > kernel.Variance()) reduction = kernel.Variance();
    total += reduction;
  }
  return total;
}

}  // namespace psens
