#ifndef PSENS_GP_KERNEL_H_
#define PSENS_GP_KERNEL_H_

#include <memory>
#include <vector>

#include "common/geometry.h"
#include "la/matrix.h"

namespace psens {

/// Stationary covariance function over 2-D locations.
class Kernel {
 public:
  virtual ~Kernel() = default;
  /// Covariance between the phenomenon values at `a` and `b`.
  virtual double operator()(const Point& a, const Point& b) const = 0;
  /// Prior variance at any location (k(x, x)).
  virtual double Variance() const = 0;
  /// Conservative support radius: a distance R such that k(a, b) < tol
  /// whenever Distance(a, b) > R. Candidate pruning uses it to skip
  /// observations that cannot meaningfully reduce variance anywhere near
  /// the targets; infinity (the default) disables such pruning for
  /// kernels without a known bound.
  virtual double SupportRadius(double tol) const;
};

/// Squared-exponential kernel: variance * exp(-d^2 / (2 l^2)).
class SquaredExponentialKernel : public Kernel {
 public:
  SquaredExponentialKernel(double variance, double length_scale)
      : variance_(variance), length_scale_(length_scale) {}

  double operator()(const Point& a, const Point& b) const override;
  double Variance() const override { return variance_; }
  double SupportRadius(double tol) const override;

 private:
  double variance_;
  double length_scale_;
};

/// Matern-3/2 kernel: variance * (1 + r) * exp(-r), r = sqrt(3) d / l.
class Matern32Kernel : public Kernel {
 public:
  Matern32Kernel(double variance, double length_scale)
      : variance_(variance), length_scale_(length_scale) {}

  double operator()(const Point& a, const Point& b) const override;
  double Variance() const override { return variance_; }
  double SupportRadius(double tol) const override;

 private:
  double variance_;
  double length_scale_;
};

/// Builds the covariance matrix K with K(i, j) = kernel(a[i], b[j]).
Matrix CovarianceMatrix(const Kernel& kernel, const std::vector<Point>& a,
                        const std::vector<Point>& b);

}  // namespace psens

#endif  // PSENS_GP_KERNEL_H_
