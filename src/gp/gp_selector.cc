#include "gp/gp_selector.h"

#include <cmath>

namespace psens {

IncrementalGpSelector::IncrementalGpSelector(std::shared_ptr<const Kernel> kernel,
                                             double noise_variance,
                                             std::vector<Point> targets)
    : kernel_(std::move(kernel)),
      noise_variance_(noise_variance),
      targets_(std::move(targets)),
      target_z_(targets_.size()) {}

void IncrementalGpSelector::Whiten(const Point& s, std::vector<double>* z,
                                   double* var) const {
  const size_t n = observations_.size();
  z->resize(n);
  // Forward substitution: L z = k_A(s).
  for (size_t i = 0; i < n; ++i) {
    double sum = (*kernel_)(observations_[i], s);
    for (size_t k = 0; k < i; ++k) sum -= l_rows_[i][k] * (*z)[k];
    (*z)[i] = sum / l_rows_[i][i];
  }
  double v = (*kernel_)(s, s) + noise_variance_;
  for (size_t i = 0; i < n; ++i) v -= (*z)[i] * (*z)[i];
  *var = v > 1e-12 ? v : 1e-12;  // numerical floor
}

double IncrementalGpSelector::MarginalGain(const Point& s) const {
  std::vector<double>& z = whiten_scratch_;
  double var = 0.0;
  Whiten(s, &z, &var);
  double gain = 0.0;
  for (size_t v = 0; v < targets_.size(); ++v) {
    double cov = (*kernel_)(targets_[v], s);
    const std::vector<double>& zv = target_z_[v];
    for (size_t i = 0; i < z.size(); ++i) cov -= zv[i] * z[i];
    gain += cov * cov / var;
  }
  return gain;
}

void IncrementalGpSelector::MarginalGains(std::span<const Point> candidates,
                                          std::span<double> gains) const {
  for (size_t i = 0; i < candidates.size(); ++i) {
    gains[i] = MarginalGain(candidates[i]);
  }
}

void IncrementalGpSelector::Add(const Point& s) {
  std::vector<double>& z = whiten_scratch_;
  double var = 0.0;
  Whiten(s, &z, &var);
  const double diag = std::sqrt(var);
  // Extend L with the new row [z^T, diag].
  std::vector<double> row = z;
  row.push_back(diag);
  l_rows_.push_back(std::move(row));
  // Extend each target's whitened vector with cov_post / diag.
  for (size_t v = 0; v < targets_.size(); ++v) {
    double cov = (*kernel_)(targets_[v], s);
    std::vector<double>& zv = target_z_[v];
    for (size_t i = 0; i < z.size(); ++i) cov -= zv[i] * z[i];
    zv.push_back(cov / diag);
  }
  observations_.push_back(s);
}

double IncrementalGpSelector::TotalReduction() const {
  double total = 0.0;
  for (const std::vector<double>& zv : target_z_) {
    for (double z : zv) total += z * z;
  }
  return total;
}

double IncrementalGpSelector::PriorVariance() const {
  return static_cast<double>(targets_.size()) * kernel_->Variance();
}

}  // namespace psens
