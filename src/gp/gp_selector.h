#ifndef PSENS_GP_GP_SELECTOR_H_
#define PSENS_GP_GP_SELECTOR_H_

#include <memory>
#include <span>
#include <vector>

#include "common/geometry.h"
#include "gp/kernel.h"

namespace psens {

/// Incremental greedy helper for GP sensor selection (Algorithm 4): keeps
/// the Cholesky factor of K_AA + noise*I for the growing observation set A
/// and, per target, the whitened cross-covariance z_v = L^-1 k_A(v), so
/// that the marginal variance-reduction gain of a candidate observation is
/// O(|A|^2 + |targets| * |A|) instead of a fresh O(|A|^3) factorization.
class IncrementalGpSelector {
 public:
  IncrementalGpSelector(std::shared_ptr<const Kernel> kernel, double noise_variance,
                        std::vector<Point> targets);

  /// F(A + s) - F(A): additional expected variance reduction at the
  /// targets from also observing at `s`. Always >= 0.
  double MarginalGain(const Point& s) const;

  /// Batched probe: gains[i] = MarginalGain(candidates[i]) bit for bit.
  /// The whiten scratch is per-object, so the whole batch reuses one
  /// buffer with no per-probe allocation; the locality win comes from the
  /// call sites — sweeping one selector's full candidate batch back to
  /// back keeps *this* selector's Cholesky rows and per-target whitened
  /// vectors in cache, where the reference loops interleaved probes
  /// across selectors. Region monitoring's Algorithm 4 loop batches all
  /// candidates of one selector per refresh through this.
  void MarginalGains(std::span<const Point> candidates,
                     std::span<double> gains) const;

  /// Adds an observation at `s` to A.
  void Add(const Point& s);

  /// F(A): total variance reduction at the targets.
  double TotalReduction() const;

  /// Total prior variance at the targets (the upper bound of F).
  double PriorVariance() const;

  int NumObservations() const { return static_cast<int>(observations_.size()); }
  const std::vector<Point>& observations() const { return observations_; }

 private:
  /// Computes z_s = L^-1 k_A(s) and the posterior observation variance of
  /// s (k(s,s) + noise - |z_s|^2).
  void Whiten(const Point& s, std::vector<double>* z, double* var) const;

  std::shared_ptr<const Kernel> kernel_;
  double noise_variance_;
  std::vector<Point> targets_;
  std::vector<Point> observations_;
  /// Rows of the lower-triangular factor L (row i has i+1 entries).
  std::vector<std::vector<double>> l_rows_;
  /// Per target: z_v (|A| entries each).
  std::vector<std::vector<double>> target_z_;
  /// Whitening scratch reused across MarginalGain probes: the greedy
  /// planner evaluates every candidate every round, and a fresh
  /// std::vector allocation per probe dominated the loop. Makes the
  /// selector non-reentrant per instance (it already was: Add mutates) —
  /// callers needing concurrency use one selector per thread.
  mutable std::vector<double> whiten_scratch_;
};

}  // namespace psens

#endif  // PSENS_GP_GP_SELECTOR_H_
