#include "gp/gaussian_process.h"

#include <cmath>

#include "la/cholesky.h"

namespace psens {

GaussianProcess::GaussianProcess(std::shared_ptr<const Kernel> kernel,
                                 double noise_variance)
    : kernel_(std::move(kernel)), noise_variance_(noise_variance) {}

double GaussianProcess::PriorVariance(const std::vector<Point>& targets) const {
  return static_cast<double>(targets.size()) * kernel_->Variance();
}

double GaussianProcess::PosteriorVariance(const std::vector<Point>& targets,
                                          const std::vector<Point>& observed) const {
  if (observed.empty()) return PriorVariance(targets);
  // K_AA + noise I, factorized once.
  Matrix kaa = CovarianceMatrix(*kernel_, observed, observed);
  for (size_t i = 0; i < observed.size(); ++i) kaa(i, i) += noise_variance_;
  Cholesky chol(kaa, 1e-10);
  if (!chol.Ok()) return PriorVariance(targets);  // degenerate; no reduction
  double total = 0.0;
  for (const Point& v : targets) {
    // Posterior variance at v: k(v,v) - k_vA (K_AA + nI)^-1 k_Av.
    std::vector<double> kva(observed.size());
    for (size_t j = 0; j < observed.size(); ++j) kva[j] = (*kernel_)(v, observed[j]);
    const std::vector<double> alpha = chol.SolveLower(kva);
    double reduction = 0.0;
    for (double a : alpha) reduction += a * a;
    double var = kernel_->Variance() - reduction;
    if (var < 0.0) var = 0.0;  // numerical guard
    total += var;
  }
  return total;
}

double GaussianProcess::VarianceReduction(const std::vector<Point>& targets,
                                          const std::vector<Point>& observed) const {
  const double reduction = PriorVariance(targets) - PosteriorVariance(targets, observed);
  return reduction > 0.0 ? reduction : 0.0;
}

std::vector<Point> GridTargets(const Rect& region, double step) {
  std::vector<Point> targets;
  if (step <= 0.0) return targets;
  for (double y = region.y_min + step / 2.0; y <= region.y_max; y += step) {
    for (double x = region.x_min + step / 2.0; x <= region.x_max; x += step) {
      targets.push_back(Point{x, y});
    }
  }
  return targets;
}

}  // namespace psens
