#ifndef PSENS_GP_SPATIO_TEMPORAL_H_
#define PSENS_GP_SPATIO_TEMPORAL_H_

#include <memory>
#include <vector>

#include "common/geometry.h"
#include "gp/kernel.h"

namespace psens {

/// A sample point of a spatio-temporal phenomenon: where and when.
struct STPoint {
  Point location;
  double time = 0.0;
};

/// Separable spatio-temporal kernel: k((p,t),(p',t')) = k_s(p,p') *
/// exp(-(t-t')^2 / (2 l_t^2)). This is the "add a time dimension to the
/// random variables" extension the paper sketches in Section 2.3.1, which
/// region monitoring needs so that re-sampling a location in later slots
/// has fresh value (the field evolves).
class SpatioTemporalKernel {
 public:
  SpatioTemporalKernel(std::shared_ptr<const Kernel> spatial,
                       double temporal_length_scale)
      : spatial_(std::move(spatial)), temporal_length_(temporal_length_scale) {}

  double operator()(const STPoint& a, const STPoint& b) const;
  double Variance() const { return spatial_->Variance(); }

 private:
  std::shared_ptr<const Kernel> spatial_;
  double temporal_length_;
};

/// Expected variance reduction (Eq. 6 with the time dimension): total
/// prior variance at `targets` minus total posterior variance given noisy
/// observations at `observed`. Non-negative; 0 when `observed` is empty.
double VarianceReductionST(const SpatioTemporalKernel& kernel, double noise_variance,
                           const std::vector<STPoint>& targets,
                           const std::vector<STPoint>& observed);

}  // namespace psens

#endif  // PSENS_GP_SPATIO_TEMPORAL_H_
