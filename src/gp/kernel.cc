#include "gp/kernel.h"

#include <cmath>
#include <limits>

namespace psens {

double Kernel::SupportRadius(double /*tol*/) const {
  return std::numeric_limits<double>::infinity();
}

double SquaredExponentialKernel::SupportRadius(double tol) const {
  if (tol <= 0.0) return std::numeric_limits<double>::infinity();
  if (tol >= variance_) return 0.0;
  // variance * exp(-d^2 / 2l^2) = tol  =>  d = l sqrt(2 ln(variance/tol)).
  return length_scale_ * std::sqrt(2.0 * std::log(variance_ / tol));
}

double Matern32Kernel::SupportRadius(double tol) const {
  if (tol <= 0.0) return std::numeric_limits<double>::infinity();
  if (tol >= variance_) return 0.0;
  // Solve (1 + r) exp(-r) = tol / variance by bisection; the left side is
  // strictly decreasing for r > 0.
  const double target = tol / variance_;
  double lo = 0.0, hi = 1.0;
  while ((1.0 + hi) * std::exp(-hi) > target) hi *= 2.0;
  for (int it = 0; it < 64; ++it) {
    const double mid = 0.5 * (lo + hi);
    if ((1.0 + mid) * std::exp(-mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi * length_scale_ / std::sqrt(3.0);
}

double SquaredExponentialKernel::operator()(const Point& a, const Point& b) const {
  const double d = Distance(a, b);
  return variance_ * std::exp(-d * d / (2.0 * length_scale_ * length_scale_));
}

double Matern32Kernel::operator()(const Point& a, const Point& b) const {
  const double r = std::sqrt(3.0) * Distance(a, b) / length_scale_;
  return variance_ * (1.0 + r) * std::exp(-r);
}

Matrix CovarianceMatrix(const Kernel& kernel, const std::vector<Point>& a,
                        const std::vector<Point>& b) {
  Matrix k(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) k(i, j) = kernel(a[i], b[j]);
  }
  return k;
}

}  // namespace psens
