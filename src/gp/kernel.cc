#include "gp/kernel.h"

#include <cmath>

namespace psens {

double SquaredExponentialKernel::operator()(const Point& a, const Point& b) const {
  const double d = Distance(a, b);
  return variance_ * std::exp(-d * d / (2.0 * length_scale_ * length_scale_));
}

double Matern32Kernel::operator()(const Point& a, const Point& b) const {
  const double r = std::sqrt(3.0) * Distance(a, b) / length_scale_;
  return variance_ * (1.0 + r) * std::exp(-r);
}

Matrix CovarianceMatrix(const Kernel& kernel, const std::vector<Point>& a,
                        const std::vector<Point>& b) {
  Matrix k(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) k(i, j) = kernel(a[i], b[j]);
  }
  return k;
}

}  // namespace psens
