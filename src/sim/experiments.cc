#include "sim/experiments.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/thread_pool.h"
#include "core/greedy.h"
#include "core/location_monitoring.h"
#include "core/query_mix.h"
#include "core/region_monitoring.h"
#include "core/slot.h"
#include "engine/acquisition_engine.h"
#include "engine/serving_engine.h"
#include "mobility/random_waypoint.h"

namespace psens {

void ApplyTraceSlot(const Trace& trace, int slot, std::vector<Sensor>* sensors) {
  for (Sensor& s : *sensors) {
    if (s.id() < trace.NumSensors()) {
      s.SetPosition(trace.Position(slot, s.id()), trace.Present(slot, s.id()));
    } else {
      s.SetPosition(Point{0, 0}, false);
    }
  }
}

namespace {

/// Independent RNG stream for slot `t`, a pure function of (base, t): the
/// same stream backs the sequential and the sharded execution paths, so a
/// slot's workload never depends on which thread — or in which order — it
/// runs.
Rng SlotStream(const Rng& base, int t) {
  Rng fork_source = base;  // Fork advances its parent; keep `base` pristine
  return fork_source.Fork(static_cast<uint64_t>(t) + 1);
}

/// Partial sums contributed by one simulation slot. Accumulated in slot
/// order after all slots ran, so results are independent of thread count.
struct SlotOutcome {
  double utility = 0.0;
  double cost = 0.0;
  double value = 0.0;
  double quality_sum = 0.0;
  int64_t queries = 0;
  int64_t answered = 0;
  /// Global sensor ids charged a reading (feeds sensor wear/privacy state
  /// on the sequential feedback path).
  std::vector<int> read_sensor_ids;
};

/// Serving configuration shared by all slots of one experiment run (the
/// simple experiments, whose configs expose only an index policy).
ServingConfig MakeServingConfig(const Rect& working_region, double dmax,
                                SlotIndexPolicy index_policy) {
  return ServingConfig().WithRegion(working_region).WithDmax(dmax).WithIndexPolicy(
      index_policy);
}

/// Stamps the experiment's region/dmax onto a caller-provided serving
/// config (AggregateExperimentConfig::serving and friends own every other
/// knob).
ServingConfig StampServingConfig(ServingConfig serving,
                                 const Rect& working_region, double dmax) {
  return serving.WithRegion(working_region).WithDmax(dmax);
}

/// Runs `slots` slot bodies either sequentially with sensor-state feedback
/// (RecordReadings between slots) or sharded over a thread pool when the
/// population carries no cross-slot feedback. Every path streams the trace
/// through a persistent serving engine (MakeServingEngine — single or
/// sharded per ServingConfig::shards) — the slot context and spatial
/// index are repaired from each slot's position/presence delta rather than
/// rebuilt — which is bit-identical to per-slot reconstruction
/// (tests/streaming_equivalence_test.cc). `body(t, slot)` must only read
/// `slot` and return the slot's partials.
template <typename SlotBody>
std::vector<SlotOutcome> RunSlots(const Trace& trace, int slots,
                                  const std::vector<Sensor>& sensors,
                                  const SensorPopulationConfig& population,
                                  const ServingConfig& serving_config,
                                  int parallelism, const SlotBody& body) {
  std::vector<SlotOutcome> outcomes(static_cast<size_t>(std::max(slots, 0)));
  if (HasCrossSlotFeedback(population, slots)) {
    std::unique_ptr<ServingEngine> engine =
        MakeServingEngine(sensors, serving_config);
    for (int t = 0; t < slots; ++t) {
      engine->ApplyTrace(trace, t);
      outcomes[t] = body(t, engine->BeginSlot(t));
      engine->RecordReadings(outcomes[t].read_sensor_ids, t);
    }
    return outcomes;
  }
  // Independent slots: each worker owns a pristine engine over its own
  // registry snapshot, and nothing on this path feeds slot outcomes back,
  // so any worker count — and any slot order within a worker — produces
  // the same announcements a fresh rebuild would.
  const int threads =
      std::min(ThreadPool::ResolveParallelism(parallelism), std::max(slots, 1));
  if (threads == 1) {
    std::unique_ptr<ServingEngine> engine =
        MakeServingEngine(sensors, serving_config);
    for (int t = 0; t < slots; ++t) {
      engine->ApplyTrace(trace, t);
      outcomes[t] = body(t, engine->BeginSlot(t));
    }
    return outcomes;
  }
  ThreadPool pool(threads);
  std::atomic<int> next{0};
  for (int w = 0; w < threads; ++w) {
    pool.Submit([&] {
      std::unique_ptr<ServingEngine> engine =
          MakeServingEngine(sensors, serving_config);
      for (int t = next++; t < slots; t = next++) {
        engine->ApplyTrace(trace, t);
        outcomes[t] = body(t, engine->BeginSlot(t));
      }
    });
  }
  pool.Wait();
  return outcomes;
}

/// Ordered reduction of slot partials into the common result fields.
ExperimentResult ReduceOutcomes(const std::vector<SlotOutcome>& outcomes) {
  ExperimentResult result;
  double total_utility = 0.0;
  for (const SlotOutcome& o : outcomes) {
    total_utility += o.utility;
    result.avg_cost += o.cost;
    result.avg_value += o.value;
    result.avg_quality += o.quality_sum;
    result.total_queries += o.queries;
    result.answered_queries += o.answered;
  }
  const int slots = static_cast<int>(outcomes.size());
  result.avg_utility = slots > 0 ? total_utility / slots : 0.0;
  result.avg_cost = slots > 0 ? result.avg_cost / slots : 0.0;
  result.avg_value = slots > 0 ? result.avg_value / slots : 0.0;
  result.satisfaction =
      result.total_queries > 0
          ? static_cast<double>(result.answered_queries) / result.total_queries
          : 0.0;
  result.avg_quality = result.answered_queries > 0
                           ? result.avg_quality / result.answered_queries
                           : 0.0;
  return result;
}

}  // namespace

ExperimentResult RunPointExperiment(const PointExperimentConfig& config) {
  Rng rng(config.seed);
  Rng sensor_rng = rng.Fork(1);
  Rng query_rng = rng.Fork(2);
  SensorPopulationConfig population = config.sensors;
  population.count = config.trace->NumSensors();
  const std::vector<Sensor> sensors = GenerateSensors(population, sensor_rng);

  const int slots = std::min(config.num_slots, config.trace->NumSlots());
  const auto body = [&](int t, const SlotContext& slot) {
    Rng slot_rng = SlotStream(query_rng, t);
    const std::vector<PointQuery> queries =
        GeneratePointQueries(config.queries_per_slot, config.working_region,
                             config.budget, config.theta_min,
                             t * config.queries_per_slot, slot_rng);
    PointSchedulingOptions options;
    options.scheduler = config.scheduler;
    options.node_limit = config.node_limit;
    options.seed = config.seed + static_cast<uint64_t>(t);
    const PointScheduleResult schedule = SchedulePointQueries(queries, slot, options);

    SlotOutcome out;
    out.utility = schedule.Utility();
    out.cost = schedule.total_cost;
    out.value = schedule.total_value;
    out.queries = static_cast<int64_t>(queries.size());
    for (const PointAssignment& a : schedule.assignments) {
      if (a.satisfied()) {
        ++out.answered;
        out.quality_sum += a.value / queries[a.query].budget;
      }
    }
    out.read_sensor_ids.reserve(schedule.selected_sensors.size());
    for (int si : schedule.selected_sensors) {
      out.read_sensor_ids.push_back(slot.sensors[si].sensor_id);
    }
    return out;
  };
  return ReduceOutcomes(RunSlots(
      *config.trace, slots, sensors, population,
      MakeServingConfig(config.working_region, config.dmax, config.index_policy),
      config.parallelism, body));
}

ExperimentResult RunAggregateExperiment(const AggregateExperimentConfig& config) {
  Rng rng(config.seed);
  Rng sensor_rng = rng.Fork(1);
  Rng query_rng = rng.Fork(2);
  SensorPopulationConfig population = config.sensors;
  population.count = config.trace->NumSensors();
  const std::vector<Sensor> sensors = GenerateSensors(population, sensor_rng);

  const int slots = std::min(config.num_slots, config.trace->NumSlots());
  const auto body = [&](int t, const SlotContext& slot) {
    Rng slot_rng = SlotStream(query_rng, t);
    const std::vector<AggregateQuery::Params> params = GenerateAggregateQueries(
        config.mean_queries_per_slot, config.working_region, config.sensing_range,
        config.budget_factor, t * 100, slot_rng);
    std::vector<std::unique_ptr<AggregateQuery>> queries;
    for (const AggregateQuery::Params& p : params) {
      queries.push_back(std::make_unique<AggregateQuery>(p, slot));
    }
    std::vector<MultiQuery*> ptrs;
    for (auto& q : queries) ptrs.push_back(q.get());
    const SelectionResult selection =
        config.greedy
            ? GreedySensorSelection(ptrs, slot, nullptr,
                                    config.serving.scheduler)
            : BaselineSequentialSelection(ptrs, slot);

    SlotOutcome out;
    out.utility = selection.Utility();
    out.cost = selection.total_cost;
    out.value = selection.total_value;
    out.queries = static_cast<int64_t>(queries.size());
    for (const auto& q : queries) {
      if (q->CurrentValue() > 0.0) {
        ++out.answered;
        out.quality_sum += q->CurrentValue() / q->MaxValue();
      }
    }
    out.read_sensor_ids.reserve(selection.selected_sensors.size());
    for (int si : selection.selected_sensors) {
      out.read_sensor_ids.push_back(slot.sensors[si].sensor_id);
    }
    return out;
  };
  return ReduceOutcomes(RunSlots(
      *config.trace, slots, sensors, population,
      StampServingConfig(config.serving, config.working_region,
                         config.sensing_range),
      config.parallelism, body));
}

ExperimentResult RunLocationMonitoringExperiment(
    const LocationMonitoringExperimentConfig& config) {
  Rng rng(config.seed);
  Rng sensor_rng = rng.Fork(1);
  Rng query_rng = rng.Fork(2);
  SensorPopulationConfig population = config.sensors;
  population.count = config.trace->NumSensors();
  AcquisitionEngine engine(
      GenerateSensors(population, sensor_rng),
      MakeServingConfig(config.working_region, config.dmax,
                        config.index_policy));

  LocationMonitoringManager::Config manager_config;
  manager_config.alpha = config.alpha;
  manager_config.desired_times_only = config.desired_times_only;
  LocationMonitoringManager manager(config.history_times, config.history_values,
                                    manager_config);

  ExperimentResult result;
  double total_utility = 0.0;
  int next_id = 0;
  const int slots = std::min(config.num_slots, config.trace->NumSlots());
  for (int t = 0; t < slots; ++t) {
    engine.ApplyTrace(*config.trace, t);
    const SlotContext& slot = engine.BeginSlot(t);

    // New arrivals, keeping the live population under max_alive.
    const int arrivals = static_cast<int>(
        query_rng.UniformInt(config.min_arrivals, config.max_arrivals));
    for (int i = 0; i < arrivals; ++i) {
      if (static_cast<int>(manager.queries().size()) >= config.max_alive) break;
      manager.AddQuery(GenerateLocationMonitoringQuery(
          next_id++, config.working_region, t, slots, config.history_times,
          config.history_values, config.budget_factor, query_rng));
    }

    const std::vector<PointQuery> created = manager.CreatePointQueries(t);
    PointSchedulingOptions options;
    options.scheduler = config.point_scheduler;
    options.seed = config.seed + static_cast<uint64_t>(t);
    const PointScheduleResult schedule = SchedulePointQueries(created, slot, options);
    const double realized = manager.ApplyResults(t, created, schedule.assignments);

    total_utility += realized - schedule.total_cost;
    result.avg_cost += schedule.total_cost;
    result.avg_value += realized;
    engine.RecordSlotReadings(schedule.selected_sensors, t);
    manager.RemoveExpired(t + 1);
  }
  // Finalize remaining queries for the quality statistics.
  manager.RemoveExpired(slots + 1000000);

  result.avg_utility = slots > 0 ? total_utility / slots : 0.0;
  result.avg_cost = slots > 0 ? result.avg_cost / slots : 0.0;
  result.avg_value = slots > 0 ? result.avg_value / slots : 0.0;
  result.total_queries = manager.num_completed();
  result.answered_queries = manager.num_completed();
  result.avg_quality = manager.MeanCompletedQuality();
  result.satisfaction = 1.0;
  return result;
}

ExperimentResult RunRegionMonitoringExperiment(
    const RegionMonitoringExperimentConfig& config) {
  Rng rng(config.seed);
  Rng sensor_rng = rng.Fork(1);
  Rng query_rng = rng.Fork(2);

  // 30 imaginary mobile sensors roaming the field via RWM (Section 4.2).
  RandomWaypointConfig mobility;
  mobility.num_sensors = config.num_sensors;
  mobility.num_slots = config.num_slots;
  mobility.region_size = config.field.Width();
  mobility.region_height = config.field.Height();
  mobility.min_max_speed = 1.0;
  mobility.max_max_speed = 2.0;
  mobility.seed = config.seed ^ 0xABCDEF;
  const Trace trace = GenerateRandomWaypoint(mobility);

  SensorPopulationConfig population = config.sensors;
  population.count = config.num_sensors;
  AcquisitionEngine engine(
      GenerateSensors(population, sensor_rng),
      MakeServingConfig(config.field, config.sensing_radius,
                        config.index_policy));

  RegionMonitoringManager::Config manager_config;
  manager_config.alpha = config.alpha;
  manager_config.cost_weighting = config.use_alg3 && config.cost_weighting;
  manager_config.share_extra_sensors = config.use_alg3 && config.share_extra_sensors;
  RegionMonitoringManager manager(config.kernel, manager_config);

  ExperimentResult result;
  double total_utility = 0.0;
  int next_id = 0;
  for (int t = 0; t < config.num_slots; ++t) {
    engine.ApplyTrace(trace, t);
    const SlotContext& slot = engine.BeginSlot(t);

    manager.AddQuery(GenerateRegionMonitoringQuery(next_id++, config.field, t,
                                                   config.num_slots,
                                                   config.sensing_radius,
                                                   config.budget_factor, query_rng));

    const std::vector<PointQuery> created = manager.CreatePointQueries(slot);
    PointSchedulingOptions options;
    options.scheduler =
        config.use_alg3 ? PointScheduler::kOptimal : PointScheduler::kBaseline;
    options.seed = config.seed + static_cast<uint64_t>(t);
    const PointScheduleResult schedule = SchedulePointQueries(created, slot, options);
    const RegionMonitoringManager::SlotOutcome outcome = manager.ApplyResults(
        slot, created, schedule.assignments, schedule.selected_sensors);

    total_utility += outcome.value_gain - schedule.total_cost;
    result.avg_cost += schedule.total_cost;
    result.avg_value += outcome.value_gain;
    engine.RecordSlotReadings(schedule.selected_sensors, t);
    manager.RemoveExpired(t + 1);
  }
  manager.RemoveExpired(config.num_slots + 1000000);

  result.avg_utility = config.num_slots > 0 ? total_utility / config.num_slots : 0.0;
  result.avg_cost = config.num_slots > 0 ? result.avg_cost / config.num_slots : 0.0;
  result.avg_value = config.num_slots > 0 ? result.avg_value / config.num_slots : 0.0;
  result.total_queries = manager.num_completed();
  result.answered_queries = manager.num_completed();
  result.avg_quality = manager.MeanCompletedQuality();
  result.satisfaction = 1.0;
  return result;
}

QueryMixResultSummary RunQueryMixExperiment(const QueryMixExperimentConfig& config) {
  Rng rng(config.seed);
  Rng sensor_rng = rng.Fork(1);
  Rng query_rng = rng.Fork(2);
  SensorPopulationConfig population = config.sensors;
  population.count = config.trace->NumSensors();
  std::unique_ptr<ServingEngine> engine = MakeServingEngine(
      GenerateSensors(population, sensor_rng),
      StampServingConfig(config.serving, config.working_region, config.dmax));

  LocationMonitoringManager::Config lm_config;
  lm_config.alpha = config.alpha;
  lm_config.desired_times_only = !config.use_alg5;  // baseline: desired only
  LocationMonitoringManager lm_manager(config.history_times, config.history_values,
                                       lm_config);

  QueryMixResultSummary summary;
  double total_utility = 0.0;
  double point_quality_sum = 0.0;
  int64_t point_answered = 0;
  int64_t point_total = 0;
  double aggregate_quality_sum = 0.0;
  int64_t aggregate_answered = 0;
  int next_lm_id = 0;
  const int slots = std::min(config.num_slots, config.trace->NumSlots());
  for (int t = 0; t < slots; ++t) {
    engine->ApplyTrace(*config.trace, t);
    const SlotContext& slot = engine->BeginSlot(t);

    const std::vector<PointQuery> points = GeneratePointQueries(
        config.point_queries_per_slot, config.working_region,
        BudgetScheme{config.budget_factor, false, 0.0}, 0.2,
        t * config.point_queries_per_slot, query_rng);
    const std::vector<AggregateQuery::Params> aggregates = GenerateAggregateQueries(
        config.mean_aggregate_queries, config.working_region, config.dmax,
        config.budget_factor, t * 100, query_rng);
    const int arrivals = static_cast<int>(query_rng.UniformInt(3, 10));
    for (int i = 0; i < arrivals; ++i) {
      if (static_cast<int>(lm_manager.queries().size()) >= config.max_alive_monitoring)
        break;
      lm_manager.AddQuery(GenerateLocationMonitoringQuery(
          next_lm_id++, config.working_region, t, slots, config.history_times,
          config.history_values, config.budget_factor, query_rng));
    }

    QueryMixOptions options;
    options.use_greedy = config.use_alg5;
    options.engine = config.serving.scheduler;
    options.seed = config.seed + static_cast<uint64_t>(t);
    const QueryMixSlotResult slot_result = RunQueryMixSlot(
        slot, points, aggregates, &lm_manager, /*region_manager=*/nullptr, options);

    total_utility += slot_result.Utility();
    summary.avg_cost += slot_result.total_cost;
    summary.avg_value += slot_result.total_value;
    point_total += slot_result.point.total;
    point_answered += slot_result.point.answered;
    point_quality_sum += slot_result.point.quality_sum;
    aggregate_answered += slot_result.aggregate.answered;
    aggregate_quality_sum += slot_result.aggregate.quality_sum;
    engine->RecordSlotReadings(slot_result.selected_sensors, t);
    lm_manager.RemoveExpired(t + 1);
  }
  lm_manager.RemoveExpired(slots + 1000000);

  summary.avg_utility = slots > 0 ? total_utility / slots : 0.0;
  summary.avg_cost = slots > 0 ? summary.avg_cost / slots : 0.0;
  summary.avg_value = slots > 0 ? summary.avg_value / slots : 0.0;
  summary.point_satisfaction =
      point_total > 0 ? static_cast<double>(point_answered) / point_total : 0.0;
  summary.point_quality =
      point_answered > 0 ? point_quality_sum / point_answered : 0.0;
  summary.aggregate_quality =
      aggregate_answered > 0 ? aggregate_quality_sum / aggregate_answered : 0.0;
  summary.monitoring_quality = lm_manager.MeanCompletedQuality();
  return summary;
}

}  // namespace psens
