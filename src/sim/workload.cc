#include "sim/workload.h"

#include <algorithm>
#include <cmath>

#include "regress/sampling_time_selector.h"

namespace psens {

std::vector<PointQuery> GeneratePointQueries(int count, const Rect& region,
                                             const BudgetScheme& budget,
                                             double theta_min, int id_base,
                                             Rng& rng) {
  std::vector<PointQuery> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    PointQuery q;
    q.id = id_base + i;
    q.location = Point{rng.Uniform(region.x_min, region.x_max),
                       rng.Uniform(region.y_min, region.y_max)};
    q.budget = budget.Draw(rng);
    q.theta_min = theta_min;
    queries.push_back(q);
  }
  return queries;
}

Rect RandomRect(const Rect& bounds, double min_extent, Rng& rng) {
  const double max_w = std::max(min_extent, bounds.Width());
  const double max_h = std::max(min_extent, bounds.Height());
  const double w = rng.Uniform(min_extent, max_w);
  const double h = rng.Uniform(min_extent, max_h);
  const double x = rng.Uniform(bounds.x_min, std::max(bounds.x_min, bounds.x_max - w));
  const double y = rng.Uniform(bounds.y_min, std::max(bounds.y_min, bounds.y_max - h));
  return Rect{x, y, std::min(bounds.x_max, x + w), std::min(bounds.y_max, y + h)};
}

std::vector<AggregateQuery::Params> GenerateAggregateQueries(
    int mean_count, const Rect& working, double sensing_range,
    double budget_factor, int id_base, Rng& rng) {
  // "number of aggregate queries is selected uniformly at random with the
  // mean of 30": uniform in [1, 2*mean - 1].
  const int count = static_cast<int>(rng.UniformInt(1, 2 * mean_count - 1));
  std::vector<AggregateQuery::Params> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    AggregateQuery::Params params;
    params.id = id_base + i;
    params.region = RandomRect(working, sensing_range / 2.0, rng);
    params.sensing_range = sensing_range;
    // The paper sets B_q = A(r_q)/(1.5 r_s) * b with r_s = dmax
    // (Section 4.4). We keep the budget proportional to region area and to
    // b but normalize by the sensing-disk area pi r_s^2 instead of 1.5 r_s:
    // with C_s = 10 this places a lone query's per-sensor marginal value
    // (about b * theta) right around the sensor price inside the swept
    // budget-factor range, reproducing the paper's crossover where the
    // sequential baseline cannot afford any sensor at small b while the
    // joint greedy still buys shared sensors.
    params.budget = params.region.Area() /
                    (M_PI * sensing_range * sensing_range) * budget_factor;
    out.push_back(params);
  }
  return out;
}

std::vector<Sensor> GenerateSensors(const SensorPopulationConfig& config, Rng& rng) {
  std::vector<Sensor> sensors;
  sensors.reserve(config.count);
  for (int i = 0; i < config.count; ++i) {
    SensorProfile profile;
    profile.inaccuracy = rng.Uniform(0.0, config.inaccuracy_max);
    profile.trust =
        config.random_trust ? rng.Uniform(config.trust_min, 1.0) : 1.0;
    profile.base_price = config.base_price;
    if (config.linear_energy) {
      profile.energy_model = EnergyCostModel::kLinear;
      profile.energy_beta = rng.Uniform(0.0, config.beta_max);
    }
    if (config.random_privacy) {
      profile.privacy =
          static_cast<PrivacySensitivity>(rng.UniformInt(0, 4));
    }
    profile.privacy_window = config.privacy_window;
    profile.lifetime = config.lifetime;
    sensors.emplace_back(i, profile);
  }
  return sensors;
}

bool HasCrossSlotFeedback(const SensorPopulationConfig& config, int num_slots) {
  if (config.linear_energy) return true;
  if (config.random_privacy) return true;
  // With the fixed energy model a reading only matters once it wears the
  // sensor out, which cannot happen before slot `lifetime`.
  return config.lifetime < num_slots;
}

namespace {

/// Samples a cluster index from the scenario's cumulative weights.
int DrawCluster(const std::vector<double>& cdf, Rng& rng) {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  const int k = static_cast<int>(it - cdf.begin());
  return std::min(k, static_cast<int>(cdf.size()) - 1);
}

}  // namespace

Point DrawScenarioLocation(const ScaleScenario& scenario,
                           const ClusteredPopulationConfig& config, Rng& rng) {
  if (scenario.cluster_centers.empty() ||
      rng.UniformDouble() < config.background_fraction) {
    return Point{rng.Uniform(scenario.field.x_min, scenario.field.x_max),
                 rng.Uniform(scenario.field.y_min, scenario.field.y_max)};
  }
  const int k = DrawCluster(scenario.cluster_cdf, rng);
  const Point& c = scenario.cluster_centers[static_cast<size_t>(k)];
  return scenario.field.Clamp(Point{rng.Normal(c.x, config.cluster_sigma),
                                    rng.Normal(c.y, config.cluster_sigma)});
}

ScaleScenario GenerateClusteredSensors(const ClusteredPopulationConfig& config,
                                       const Rect& field, Rng& rng) {
  ScaleScenario scenario;
  scenario.field = field;
  const int clusters = std::max(1, config.num_clusters);
  scenario.cluster_centers.reserve(clusters);
  for (int k = 0; k < clusters; ++k) {
    scenario.cluster_centers.push_back(
        Point{rng.Uniform(field.x_min, field.x_max),
              rng.Uniform(field.y_min, field.y_max)});
  }
  // Zipf-like weights w_k = (k+1)^-skew, normalized into a CDF.
  scenario.cluster_cdf.resize(clusters);
  double total = 0.0;
  for (int k = 0; k < clusters; ++k) {
    total += std::pow(static_cast<double>(k + 1), -config.density_skew);
  }
  double acc = 0.0;
  for (int k = 0; k < clusters; ++k) {
    acc += std::pow(static_cast<double>(k + 1), -config.density_skew) / total;
    scenario.cluster_cdf[static_cast<size_t>(k)] = acc;
  }

  SensorPopulationConfig profile = config.profile;
  profile.count = config.count;
  scenario.sensors = GenerateSensors(profile, rng);
  for (Sensor& s : scenario.sensors) {
    s.SetPosition(DrawScenarioLocation(scenario, config, rng), true);
  }
  return scenario;
}

std::vector<PointQuery> GenerateClusteredPointQueries(
    int count, const ScaleScenario& scenario,
    const ClusteredPopulationConfig& config, const BudgetScheme& budget,
    double theta_min, int id_base, Rng& rng) {
  std::vector<PointQuery> queries;
  queries.reserve(static_cast<size_t>(std::max(count, 0)));
  for (int i = 0; i < count; ++i) {
    PointQuery q;
    q.id = id_base + i;
    q.location = DrawScenarioLocation(scenario, config, rng);
    q.budget = budget.Draw(rng);
    q.theta_min = theta_min;
    queries.push_back(q);
  }
  return queries;
}

ChurnStream::ChurnStream(const ChurnConfig& config,
                         const std::vector<Sensor>& registry, const Rect& field)
    : config_(config), field_(field) {
  base_price_.reserve(registry.size());
  for (const Sensor& s : registry) {
    base_price_.push_back(s.profile().base_price);
    if (s.present()) {
      live_.push_back(s.id());
    } else {
      parked_.push_back(s.id());
    }
  }
}

void ChurnStream::SetClusteredPlacement(
    const ScaleScenario* scenario,
    const ClusteredPopulationConfig* cluster_config) {
  scenario_ = scenario;
  cluster_config_ = cluster_config;
}

Point ChurnStream::DrawLocation(Rng& rng) {
  if (scenario_ != nullptr && cluster_config_ != nullptr) {
    return DrawScenarioLocation(*scenario_, *cluster_config_, rng);
  }
  return Point{rng.Uniform(field_.x_min, field_.x_max),
               rng.Uniform(field_.y_min, field_.y_max)};
}

void ChurnStream::Transfer(int count, std::vector<int>* from,
                           std::vector<int>* to, std::vector<int>* out,
                           Rng& rng) {
  count = std::min<int>(count, static_cast<int>(from->size()));
  for (int i = 0; i < count; ++i) {
    const size_t j = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(from->size()) - 1));
    const int id = (*from)[j];
    (*from)[j] = from->back();
    from->pop_back();
    to->push_back(id);
    out->push_back(id);
  }
}

SensorDelta ChurnStream::Next(Rng& rng) {
  SensorDelta delta;
  // Arrivals first: a slot's departures can include sensors that arrived
  // this very slot (flash participants), matching a real announce stream.
  std::vector<int> arrived;
  Transfer(static_cast<int>(rng.Poisson(config_.arrival_rate)), &parked_,
           &live_, &arrived, rng);
  delta.arrivals.reserve(arrived.size());
  for (int id : arrived) {
    delta.arrivals.push_back(SensorDelta::Placement{id, DrawLocation(rng)});
  }
  Transfer(static_cast<int>(rng.Poisson(config_.departure_rate)), &live_,
           &parked_, &delta.departures, rng);

  // Moves and price jitter sample live sensors with replacement —
  // duplicates are legal in a delta (the last announcement wins).
  const int live = static_cast<int>(live_.size());
  if (live > 0) {
    const int moves =
        static_cast<int>(std::llround(config_.move_fraction * live));
    for (int i = 0; i < moves; ++i) {
      const int id =
          live_[static_cast<size_t>(rng.UniformInt(0, live - 1))];
      delta.moves.push_back(SensorDelta::Placement{id, DrawLocation(rng)});
    }
    const int jitters =
        static_cast<int>(std::llround(config_.price_jitter_fraction * live));
    for (int i = 0; i < jitters; ++i) {
      const int id =
          live_[static_cast<size_t>(rng.UniformInt(0, live - 1))];
      const double factor = rng.Uniform(1.0 - config_.price_jitter,
                                        1.0 + config_.price_jitter);
      delta.price_changes.push_back(
          SensorDelta::PriceChange{id, base_price_[id] * factor});
    }
  }
  return delta;
}

LocationMonitoringQuery GenerateLocationMonitoringQuery(
    int id, const Rect& working, int t_now, int horizon,
    const std::vector<double>& history_times,
    const std::vector<double>& history_values, double budget_factor, Rng& rng) {
  LocationMonitoringQuery q;
  q.id = id;
  q.location = Point{rng.Uniform(working.x_min, working.x_max),
                     rng.Uniform(working.y_min, working.y_max)};
  const int duration = static_cast<int>(rng.UniformInt(5, 20));
  q.t1 = t_now;
  q.t2 = std::min(horizon - 1, t_now + duration - 1);
  q.budget = static_cast<double>(duration) * budget_factor;
  // Desired sampling times: duration/3 slots within [t1, t2], picked on
  // the historical sub-series (the technique of [19], Section 4.5).
  const int k = std::max(1, duration / 3);
  const int lo = std::min(q.t1, static_cast<int>(history_times.size()) - 1);
  const int hi = std::min(q.t2, static_cast<int>(history_times.size()) - 1);
  std::vector<double> window_times;
  std::vector<double> window_values;
  for (int i = lo; i <= hi; ++i) {
    window_times.push_back(history_times[i]);
    window_values.push_back(history_values[i]);
  }
  const std::vector<int> picked =
      SelectSamplingTimes(window_times, window_values, k);
  for (int idx : picked) q.desired.push_back(q.t1 + idx);
  if (q.desired.empty()) q.desired.push_back(q.t1);
  return q;
}

RegionMonitoringQuery GenerateRegionMonitoringQuery(int id, const Rect& field,
                                                    int t_now, int horizon,
                                                    double sensing_radius,
                                                    double budget_factor, Rng& rng) {
  RegionMonitoringQuery q;
  q.id = id;
  q.region = RandomRect(field, 2.0 * sensing_radius, rng);
  const int duration = static_cast<int>(rng.UniformInt(5, 20));
  q.t1 = t_now;
  q.t2 = std::min(horizon - 1, t_now + duration - 1);
  // B_q = A(r_q) / (3 pi r_s^2) * b (Section 4.6), read as the per-slot
  // spend rate and scaled by C_s = 10 so that the marginal valuation of a
  // planned sample is commensurable with the sensor price (the paper's
  // absolute utilities, ~1000s per slot, imply the same calibration); the
  // query's total budget covers its whole duration.
  q.budget = q.region.Area() / (3.0 * M_PI * sensing_radius * sensing_radius) *
             budget_factor * 10.0 * static_cast<double>(duration);
  return q;
}

ChurnScenarioSetup MakeChurnScenario(int n, double churn_fraction,
                                     uint64_t seed, bool with_mobility) {
  return MakeChurnScenario(n, churn_fraction, seed, with_mobility,
                           SensorPopulationConfig{});
}

ChurnScenarioSetup MakeChurnScenario(int n, double churn_fraction,
                                     uint64_t seed, bool with_mobility,
                                     const SensorPopulationConfig& profile) {
  ChurnScenarioSetup s;
  s.side = 2.0 * std::sqrt(static_cast<double>(n));
  s.field = Rect{0, 0, s.side, s.side};
  s.config.count = n;
  s.config.num_clusters = 32;
  s.config.cluster_sigma = s.side / 12.0;
  s.config.density_skew = 1.0;
  s.config.background_fraction = 0.1;
  s.config.profile = profile;
  Rng rng(seed);
  s.scenario = GenerateClusteredSensors(s.config, s.field, rng);
  s.churn.arrival_rate = churn_fraction * n;
  s.churn.departure_rate = churn_fraction * n;
  s.churn.move_fraction = with_mobility ? churn_fraction / 4.0 : 0.0;
  s.churn.price_jitter_fraction = with_mobility ? churn_fraction / 2.0 : 0.0;
  s.churn.price_jitter = 0.2;
  s.rng_after_generation = rng;
  return s;
}

}  // namespace psens
