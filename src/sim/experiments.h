#ifndef PSENS_SIM_EXPERIMENTS_H_
#define PSENS_SIM_EXPERIMENTS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/geometry.h"
#include "core/greedy.h"
#include "core/point_scheduling.h"
#include "engine/serving_config.h"
#include "data/gaussian_field.h"
#include "gp/kernel.h"
#include "mobility/trace.h"
#include "sim/workload.h"

namespace psens {

/// Aggregated outcome of one simulation run (50 slots by default).
struct ExperimentResult {
  /// Average utility (social welfare) per time slot.
  double avg_utility = 0.0;
  /// Fraction of one-shot queries answered (point experiments).
  double satisfaction = 0.0;
  /// Mean quality of results over answered/completed queries.
  double avg_quality = 0.0;
  /// Diagnostics.
  double avg_cost = 0.0;
  double avg_value = 0.0;
  int64_t total_queries = 0;
  int64_t answered_queries = 0;
};

// ---------------------------------------------------------------------------
// Single-sensor point queries (Figs. 2-6)
// ---------------------------------------------------------------------------

struct PointExperimentConfig {
  const Trace* trace = nullptr;
  Rect working_region;
  double dmax = 5.0;
  int num_slots = 50;
  int queries_per_slot = 300;
  BudgetScheme budget;
  double theta_min = 0.2;
  PointScheduler scheduler = PointScheduler::kLocalSearch;
  SensorPopulationConfig sensors;  // `count` must match the trace
  /// Spatial-index policy for each slot's sensor population (kAuto: index
  /// large slots, prune valuations; kNone: reference full scans). Pruned
  /// and unpruned runs produce bit-identical results.
  SlotIndexPolicy index_policy = SlotIndexPolicy::kAuto;
  uint64_t seed = 123;
  int64_t node_limit = 500'000;
  /// Worker threads sharding the simulation slots; 0 = hardware
  /// concurrency. Slot workloads derive from per-slot RNG streams and the
  /// reduction runs in slot order, so the result is bit-identical for any
  /// value. Only honored when the sensor population has no cross-slot
  /// feedback (see HasCrossSlotFeedback); with feedback (linear energy,
  /// privacy, short lifetimes) slots are inherently sequential and run on
  /// one thread regardless.
  int parallelism = 0;
};

ExperimentResult RunPointExperiment(const PointExperimentConfig& config);

// ---------------------------------------------------------------------------
// Spatial-aggregate queries (Fig. 7)
// ---------------------------------------------------------------------------

struct AggregateExperimentConfig {
  const Trace* trace = nullptr;
  Rect working_region;
  double sensing_range = 10.0;
  int num_slots = 50;
  int mean_queries_per_slot = 30;
  double budget_factor = 15.0;
  /// True: Algorithm 1. False: sequential baseline (Section 4.4).
  bool greedy = true;
  SensorPopulationConfig sensors;
  uint64_t seed = 123;
  /// Same contract as PointExperimentConfig::parallelism.
  int parallelism = 0;
  /// The serving stack for the Algorithm 1 selection: `scheduler` picks
  /// the engine (kStochastic / kSieve run the approximate schedulers,
  /// configured by `serving.approx`), `index_policy` the slot index
  /// (same contract as PointExperimentConfig::index_policy), `threads`
  /// the *intra-slot* parallel-selection workers (each greedy round's
  /// valuation batch is sharded inside the slot; composes with
  /// `parallelism` above — prefer one axis, not both), and `shards` a
  /// sharded deployment. The working region and dmax are stamped from
  /// this config's own fields by the runner. Results are bit-identical
  /// across thread, shard, and index choices.
  ServingConfig serving;
};

ExperimentResult RunAggregateExperiment(const AggregateExperimentConfig& config);

// ---------------------------------------------------------------------------
// Location-monitoring queries (Fig. 8)
// ---------------------------------------------------------------------------

struct LocationMonitoringExperimentConfig {
  const Trace* trace = nullptr;
  Rect working_region;
  double dmax = 10.0;
  int num_slots = 50;
  double budget_factor = 15.0;
  /// Scheduler for the generated point queries: kOptimal (Alg2-O),
  /// kLocalSearch (Alg2-LS) or kBaseline.
  PointScheduler point_scheduler = PointScheduler::kOptimal;
  /// Baseline mode: point queries only at desired sampling times.
  bool desired_times_only = false;
  double alpha = 0.5;
  int max_alive = 100;
  int min_arrivals = 3;
  int max_arrivals = 10;
  /// Historical series (previous day) driving Eq. (16)-(17).
  std::vector<double> history_times;
  std::vector<double> history_values;
  SensorPopulationConfig sensors;
  /// Same contract as PointExperimentConfig::index_policy.
  SlotIndexPolicy index_policy = SlotIndexPolicy::kAuto;
  uint64_t seed = 123;
};

ExperimentResult RunLocationMonitoringExperiment(
    const LocationMonitoringExperimentConfig& config);

// ---------------------------------------------------------------------------
// Region-monitoring queries (Fig. 9)
// ---------------------------------------------------------------------------

struct RegionMonitoringExperimentConfig {
  /// Field extents (the Intel-lab substitute is 20 x 15).
  Rect field{0, 0, 20, 15};
  /// Spatial kernel of the phenomenon (learned by the paper from a
  /// fraction of the readings; here the generator's own kernel).
  std::shared_ptr<const Kernel> kernel;
  int num_sensors = 30;
  int num_slots = 50;
  double budget_factor = 15.0;
  double sensing_radius = 2.0;
  double alpha = 0.5;
  /// Algorithm 3 (true) vs the Section 4.6 baseline (false: no cost
  /// weighting, no sharing, baseline point scheduling).
  bool use_alg3 = true;
  /// Ablation toggles (only meaningful when use_alg3).
  bool cost_weighting = true;
  bool share_extra_sensors = true;
  SensorPopulationConfig sensors;
  /// Same contract as PointExperimentConfig::index_policy.
  SlotIndexPolicy index_policy = SlotIndexPolicy::kAuto;
  uint64_t seed = 123;
};

ExperimentResult RunRegionMonitoringExperiment(
    const RegionMonitoringExperimentConfig& config);

// ---------------------------------------------------------------------------
// Query mix (Fig. 10)
// ---------------------------------------------------------------------------

struct QueryMixExperimentConfig {
  const Trace* trace = nullptr;
  Rect working_region;
  double dmax = 10.0;
  int num_slots = 50;
  double budget_factor = 15.0;
  int point_queries_per_slot = 300;
  int mean_aggregate_queries = 30;
  int max_alive_monitoring = 100;
  /// Algorithm 5 (true) vs the Section 4.7 baseline (false).
  bool use_alg5 = true;
  double alpha = 0.5;
  std::vector<double> history_times;
  std::vector<double> history_values;
  SensorPopulationConfig sensors;
  uint64_t seed = 123;
  /// Serving stack for the Algorithm 1 selection inside Algorithm 5 —
  /// same contract as AggregateExperimentConfig::serving (scheduler,
  /// approx knobs, index policy, intra-slot threads, shards).
  ServingConfig serving;
};

struct QueryMixResultSummary {
  double avg_utility = 0.0;
  double point_quality = 0.0;
  double point_satisfaction = 0.0;
  double aggregate_quality = 0.0;
  double monitoring_quality = 0.0;
  double avg_cost = 0.0;
  double avg_value = 0.0;
};

QueryMixResultSummary RunQueryMixExperiment(const QueryMixExperimentConfig& config);

/// Applies a trace slot to the sensor registry (position + presence).
void ApplyTraceSlot(const Trace& trace, int slot, std::vector<Sensor>* sensors);

}  // namespace psens

#endif  // PSENS_SIM_EXPERIMENTS_H_
