#ifndef PSENS_SIM_WORKLOAD_H_
#define PSENS_SIM_WORKLOAD_H_

#include <vector>

#include "common/geometry.h"
#include "common/rng.h"
#include "core/aggregate_query.h"
#include "core/location_monitoring.h"
#include "core/point_query.h"
#include "core/region_monitoring.h"
#include "core/sensor.h"
#include "engine/acquisition_engine.h"

namespace psens {

/// Budget scheme for end-user point queries (Section 4.3): fixed, or
/// uniform in [mean - halfwidth, mean + halfwidth] (Fig. 4).
struct BudgetScheme {
  double mean = 15.0;
  bool uniform = false;
  double halfwidth = 10.0;

  double Draw(Rng& rng) const {
    if (!uniform) return mean;
    return rng.Uniform(mean - halfwidth, mean + halfwidth);
  }
};

/// Generates `count` point queries with locations uniform in `region`.
std::vector<PointQuery> GeneratePointQueries(int count, const Rect& region,
                                             const BudgetScheme& budget,
                                             double theta_min, int id_base,
                                             Rng& rng);

/// Generates spatial-aggregate query parameters (Section 4.4): the number
/// of queries is uniform with the given mean, regions are random
/// rectangles inside `working`, and B_q = A(r) / (1.5 r_s) * budget_factor
/// with r_s = dmax.
std::vector<AggregateQuery::Params> GenerateAggregateQueries(
    int mean_count, const Rect& working, double sensing_range,
    double budget_factor, int id_base, Rng& rng);

/// Sensor-profile randomization used across experiments (Section 4.1):
/// inaccuracy uniform in [0, 0.2]; optionally a random privacy
/// sensitivity level and the linear energy model with beta in [0, 4].
struct SensorPopulationConfig {
  int count = 0;
  double base_price = 10.0;
  double inaccuracy_max = 0.2;
  bool random_privacy = false;
  bool linear_energy = false;
  double beta_max = 4.0;
  int lifetime = 50;
  int privacy_window = 5;
  /// Trust values: sensors fully trusted by default; when
  /// `random_trust` is set, trust is uniform in [trust_min, 1].
  bool random_trust = false;
  double trust_min = 0.5;
};

std::vector<Sensor> GenerateSensors(const SensorPopulationConfig& config, Rng& rng);

/// True when a population generated from `config` carries observable state
/// across time slots of a `num_slots`-slot run, i.e. when slot outcomes
/// feed back into later slots' sensor announcements:
///   - the linear energy model raises a sensor's price with each reading,
///   - privacy-sensitive sensors raise their price after recent reports,
///   - a lifetime shorter than the run lets sensors wear out mid-run.
/// When this returns false, slots are mutually independent given the seed
/// and the mobility trace, and the experiment runners may shard them
/// across threads (see the `parallelism` knob in sim/experiments.h).
bool HasCrossSlotFeedback(const SensorPopulationConfig& config, int num_slots);

// ---------------------------------------------------------------------------
// Large-scale clustered populations (fig11_scale_sweep)
// ---------------------------------------------------------------------------

/// Generator for city-scale sensor populations (100k-1M participants):
/// sensors concentrate in Gaussian clusters ("districts") whose weights
/// follow a Zipf-like law, over a uniform background — the density skew of
/// real participatory deployments that uniform populations miss and that
/// the spatial index's density heuristic keys on.
struct ClusteredPopulationConfig {
  int count = 100'000;
  int num_clusters = 32;
  /// Standard deviation of each Gaussian cluster, in field units.
  double cluster_sigma = 5.0;
  /// Zipf exponent of the cluster weights (w_k proportional to
  /// (k+1)^-skew); 0 spreads sensors evenly across clusters.
  double density_skew = 1.0;
  /// Fraction of sensors scattered uniformly over the whole field.
  double background_fraction = 0.1;
  /// Profile randomization shared with GenerateSensors (`count` ignored).
  SensorPopulationConfig profile;
};

struct ScaleScenario {
  /// Sensors with positions set and marked present (no mobility trace —
  /// the scale sweep studies single-slot scheduling throughput).
  std::vector<Sensor> sensors;
  std::vector<Point> cluster_centers;
  /// Cumulative cluster weights, for sampling query locations with the
  /// same spatial skew as the population.
  std::vector<double> cluster_cdf;
  Rect field{0, 0, 0, 0};
};

ScaleScenario GenerateClusteredSensors(const ClusteredPopulationConfig& config,
                                       const Rect& field, Rng& rng);

/// Point queries whose locations follow the scenario's clustered density
/// (cluster draw + Gaussian offset, uniform with the scenario's background
/// probability) — the traffic shape of users querying where sensors are.
std::vector<PointQuery> GenerateClusteredPointQueries(
    int count, const ScaleScenario& scenario,
    const ClusteredPopulationConfig& config, const BudgetScheme& budget,
    double theta_min, int id_base, Rng& rng);

/// A location drawn with the scenario's clustered spatial law (uniform in
/// the field with the background probability, else a Gaussian offset from
/// a weight-sampled cluster center). Exposed so churn streams place
/// arriving and relocating sensors with the same density as the initial
/// population.
Point DrawScenarioLocation(const ScaleScenario& scenario,
                           const ClusteredPopulationConfig& config, Rng& rng);

// ---------------------------------------------------------------------------
// Streaming sensor churn (fig12_streaming, AcquisitionEngine workloads)
// ---------------------------------------------------------------------------

/// Per-slot population turbulence for a long-running aggregator: sensors
/// arrive and depart as Poisson streams, a fraction of the live fleet
/// relocates, and a fraction re-announces a jittered price. Rates are
/// absolute per slot, so "1% churn at 100k sensors" is
/// arrival_rate = departure_rate = 1000.
struct ChurnConfig {
  /// Expected arrivals per slot (Poisson; capped by the parked pool).
  double arrival_rate = 0.0;
  /// Expected departures per slot (Poisson; capped by the live pool).
  double departure_rate = 0.0;
  /// Fraction of live sensors re-announcing a new location each slot.
  double move_fraction = 0.0;
  /// Fraction of live sensors re-announcing a jittered price each slot.
  double price_jitter_fraction = 0.0;
  /// Relative price jitter: new C_s = original C_s * U(1 - j, 1 + j).
  double price_jitter = 0.2;
};

/// Deterministic generator of SensorDelta streams over a registry: tracks
/// which sensors are live vs parked so arrivals only resurrect absent
/// sensors and departures only remove live ones. Placement of arrivals
/// and moves follows the clustered scenario law when one is supplied
/// (SetClusteredPlacement), else uniform in `field`.
class ChurnStream {
 public:
  ChurnStream(const ChurnConfig& config, const std::vector<Sensor>& registry,
              const Rect& field);

  /// Draw arrival/move locations with the scenario's clustered density.
  /// Both pointers must outlive the stream.
  void SetClusteredPlacement(const ScaleScenario* scenario,
                             const ClusteredPopulationConfig* cluster_config);

  /// The next slot's delta. Consumes `rng` deterministically, so two
  /// streams constructed identically and fed the same Rng produce the
  /// same delta sequence.
  SensorDelta Next(Rng& rng);

  int num_live() const { return static_cast<int>(live_.size()); }

 private:
  Point DrawLocation(Rng& rng);
  /// Moves `count` uniformly-sampled ids from `from` to `to`, appending
  /// them to `out`.
  void Transfer(int count, std::vector<int>* from, std::vector<int>* to,
                std::vector<int>* out, Rng& rng);

  ChurnConfig config_;
  Rect field_;
  const ScaleScenario* scenario_ = nullptr;
  const ClusteredPopulationConfig* cluster_config_ = nullptr;
  std::vector<int> live_;
  std::vector<int> parked_;
  /// Original C_s per sensor id: jitter is relative to the sensor's
  /// initial announcement, not compounded across slots.
  std::vector<double> base_price_;
};

/// The city-scale churn scenario shared by the fig12/fig13 gate rows and
/// the trace record/replay layer: constant-density clustered population
/// over a field whose side grows with n, Poisson arrival/departure churn
/// at `churn_fraction` of the population per slot (plus relocation and
/// price-jitter streams when `with_mobility`), and the canonical RNG
/// layout — scenario generation consumes the base seed, then forks 7
/// (churn deltas) and 8 (per-slot queries) are taken from copies of
/// `rng_after_generation`. One constructor for every consumer keeps the
/// benches, the golden traces, and the replay differential tests
/// measuring the same workload by construction.
struct ChurnScenarioSetup {
  double side = 0.0;
  double dmax = 5.0;
  Rect field;
  ClusteredPopulationConfig config;
  ScaleScenario scenario;
  ChurnConfig churn;
  Rng rng_after_generation{0};
};

ChurnScenarioSetup MakeChurnScenario(int n, double churn_fraction,
                                     uint64_t seed, bool with_mobility);

/// Overload with an explicit sensor profile (energy model, privacy
/// sensitivity, lifetime) — the closed-loop runs that exercise
/// RecordSlotReadings feedback use this to give slot outcomes something
/// to feed back into.
ChurnScenarioSetup MakeChurnScenario(int n, double churn_fraction,
                                     uint64_t seed, bool with_mobility,
                                     const SensorPopulationConfig& profile);

/// New location-monitoring query (Section 4.5): random location in
/// `working`, duration uniform in [5, 20] (clipped to `horizon`), desired
/// sampling times = duration/3 slots picked by the OptiMoS-style selector
/// over the historical series, budget = duration * budget_factor.
LocationMonitoringQuery GenerateLocationMonitoringQuery(
    int id, const Rect& working, int t_now, int horizon,
    const std::vector<double>& history_times,
    const std::vector<double>& history_values, double budget_factor, Rng& rng);

/// New region-monitoring query (Section 4.6): random rectangle inside
/// `field`, duration uniform in [5, 20], budget = A(r) / (3 pi r_s^2) *
/// budget_factor.
RegionMonitoringQuery GenerateRegionMonitoringQuery(int id, const Rect& field,
                                                    int t_now, int horizon,
                                                    double sensing_radius,
                                                    double budget_factor, Rng& rng);

/// A random axis-aligned rectangle inside `bounds` (both dimensions at
/// least `min_extent`).
Rect RandomRect(const Rect& bounds, double min_extent, Rng& rng);

}  // namespace psens

#endif  // PSENS_SIM_WORKLOAD_H_
